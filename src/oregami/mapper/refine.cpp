#include "oregami/mapper/refine.hpp"

#include <algorithm>

#include "oregami/metrics/incremental.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

namespace {

std::int64_t external_weight_of(const Graph& g,
                                const std::vector<int>& cluster_of_task) {
  std::int64_t external = 0;
  for (const auto& e : g.edges()) {
    if (cluster_of_task[static_cast<std::size_t>(e.u)] !=
        cluster_of_task[static_cast<std::size_t>(e.v)]) {
      external += e.weight;
    }
  }
  return external;
}

/// Weight from task t to cluster c under the current assignment.
std::int64_t weight_to_cluster(const Graph& g,
                               const std::vector<int>& assign, int t,
                               int c) {
  std::int64_t total = 0;
  for (const auto& a : g.neighbors(t)) {
    if (assign[static_cast<std::size_t>(a.neighbor)] == c) {
      total += a.weight;
    }
  }
  return total;
}

}  // namespace

RefineResult refine_contraction(const Graph& task_graph,
                                Contraction contraction, int load_bound_B,
                                int max_passes) {
  const int n = task_graph.num_vertices();
  contraction.validate(n);
  OREGAMI_ASSERT(load_bound_B >= contraction.max_cluster_size(),
                 "load bound must admit the input contraction");

  RefineResult result;
  result.external_before =
      external_weight_of(task_graph, contraction.cluster_of_task);

  auto& assign = contraction.cluster_of_task;
  std::vector<int> size = contraction.cluster_sizes();

  for (int pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    bool improved = false;
    // One sweep applies every best-positive action it finds, task by
    // task (FM-flavoured: cheap, deterministic, monotone).
    for (int t = 0; t < n; ++t) {
      const int ct = assign[static_cast<std::size_t>(t)];
      const std::int64_t internal =
          weight_to_cluster(task_graph, assign, t, ct);

      // Move candidates: clusters of t's neighbours (moving anywhere
      // else can only lose weight).
      std::int64_t best_gain = 0;
      int best_cluster = -1;
      int best_swap = -1;
      for (const auto& a : task_graph.neighbors(t)) {
        const int cn = assign[static_cast<std::size_t>(a.neighbor)];
        if (cn == ct) {
          continue;
        }
        if (size[static_cast<std::size_t>(cn)] < load_bound_B &&
            size[static_cast<std::size_t>(ct)] > 1) {
          const std::int64_t gain =
              weight_to_cluster(task_graph, assign, t, cn) - internal;
          if (gain > best_gain) {
            best_gain = gain;
            best_cluster = cn;
            best_swap = -1;
          }
        }
      }
      // Swap candidates: any task of another cluster (KL gain formula;
      // restricting to neighbours would miss the classic 2-2 split
      // plateau where the profitable partner shares no edge with t).
      for (int u = 0; u < n; ++u) {
        const int cu = assign[static_cast<std::size_t>(u)];
        if (cu == ct) {
          continue;
        }
        const std::int64_t w_tu =
            task_graph.edge_weight(t, u).value_or(0);
        const std::int64_t d_t =
            weight_to_cluster(task_graph, assign, t, cu) - internal;
        const std::int64_t d_u =
            weight_to_cluster(task_graph, assign, u, ct) -
            weight_to_cluster(task_graph, assign, u, cu);
        const std::int64_t gain = d_t + d_u - 2 * w_tu;
        if (gain > best_gain) {
          best_gain = gain;
          best_cluster = cu;
          best_swap = u;
        }
      }

      if (best_gain <= 0) {
        continue;
      }
      improved = true;
      if (best_swap == -1) {
        --size[static_cast<std::size_t>(ct)];
        ++size[static_cast<std::size_t>(best_cluster)];
        assign[static_cast<std::size_t>(t)] = best_cluster;
        ++result.moves;
      } else {
        assign[static_cast<std::size_t>(t)] = best_cluster;
        assign[static_cast<std::size_t>(best_swap)] = ct;
        ++result.swaps;
      }
    }
    if (!improved) {
      break;
    }
  }

  result.external_after =
      external_weight_of(task_graph, contraction.cluster_of_task);
  OREGAMI_ASSERT(result.external_after <= result.external_before,
                 "refinement must never worsen the contraction");
  contraction.validate(n);
  result.contraction = std::move(contraction);
  return result;
}

PlacementRefineResult refine_placement(const TaskGraph& graph,
                                       const Topology& topo,
                                       std::vector<int> proc_of_task,
                                       std::vector<PhaseRouting> routing,
                                       const CostModel& model,
                                       int load_bound_B, int max_passes,
                                       std::vector<std::int64_t> link_factor) {
  const int n = graph.num_tasks();
  IncrementalCompletion inc(graph, topo, std::move(proc_of_task),
                            std::move(routing), model,
                            std::move(link_factor));

  PlacementRefineResult result;
  result.completion_before = inc.completion();

  std::vector<int> tasks_on_proc(static_cast<std::size_t>(topo.num_procs()),
                                 0);
  for (const int p : inc.proc_of_task()) {
    ++tasks_on_proc[static_cast<std::size_t>(p)];
  }

  // Communication partners of each task under the static aggregate
  // (phase-independent, so computed once).
  std::vector<std::vector<int>> partners(static_cast<std::size_t>(n));
  for (const auto& phase : graph.comm_phases()) {
    for (const auto& e : phase.edges) {
      if (e.src != e.dst) {
        partners[static_cast<std::size_t>(e.src)].push_back(e.dst);
        partners[static_cast<std::size_t>(e.dst)].push_back(e.src);
      }
    }
  }
  std::vector<int> candidates;
  for (int pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    bool improved = false;
    for (int t = 0; t < n; ++t) {
      const int here = inc.proc_of_task()[static_cast<std::size_t>(t)];
      candidates.clear();
      for (const auto& a : topo.graph().neighbors(here)) {
        candidates.push_back(a.neighbor);
      }
      for (const int u : partners[static_cast<std::size_t>(t)]) {
        candidates.push_back(inc.proc_of_task()[static_cast<std::size_t>(u)]);
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());

      std::int64_t best_delta = 0;
      int best_proc = -1;
      for (const int q : candidates) {
        if (q == here) {
          continue;
        }
        if (load_bound_B > 0 &&
            tasks_on_proc[static_cast<std::size_t>(q)] >= load_bound_B) {
          continue;
        }
        const std::int64_t delta = inc.delta_move(t, q);
        if (delta < best_delta) {
          best_delta = delta;
          best_proc = q;
        }
      }
      if (best_proc < 0) {
        continue;
      }
      inc.apply_move(t, best_proc);
      --tasks_on_proc[static_cast<std::size_t>(here)];
      ++tasks_on_proc[static_cast<std::size_t>(best_proc)];
      ++result.moves;
      improved = true;
    }
    if (!improved) {
      break;
    }
  }

  result.completion_after = inc.completion();
  OREGAMI_ASSERT(result.completion_after <= result.completion_before,
                 "placement refinement must never worsen completion");
  result.proc_of_task = inc.proc_of_task();
  result.routing = inc.routing();
  return result;
}

}  // namespace oregami
