#include "oregami/mapper/repair.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "oregami/arch/routes.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/refine.hpp"
#include "oregami/metrics/incremental.hpp"
#include "oregami/support/deadline.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

std::string to_string(RepairRung rung) {
  switch (rung) {
    case RepairRung::None:
      return "none";
    case RepairRung::Migrate:
      return "migrate";
    case RepairRung::Refine:
      return "refine";
    case RepairRung::Remap:
      return "remap";
  }
  return "?";
}

namespace {

/// Nearest healthy processor to `from` by base-topology hop distance
/// (ties: lowest processor id; unreachable-in-base pairs sort last).
int nearest_healthy(const FaultedTopology& faults, int from) {
  const DistanceRow row = faults.base().distance_row(from);
  int best = -1;
  long best_d = std::numeric_limits<long>::max();
  for (const int q : faults.healthy_procs()) {
    const int d = row[q];
    const long key = d < 0 ? std::numeric_limits<long>::max() - 1 : d;
    if (key < best_d) {
      best_d = key;
      best = q;
    }
  }
  return best;
}

/// Re-routes every comm edge greedily on the faulted topology
/// (faulted link ids). Every endpoint must be healthy.
std::vector<PhaseRouting> reroute_on_faulted(
    const TaskGraph& graph, const FaultedTopology& faults,
    const std::vector<int>& proc_of_task) {
  const Topology& ftopo = faults.faulted();
  std::vector<PhaseRouting> routing(graph.comm_phases().size());
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& phase = graph.comm_phases()[k];
    routing[k].route_of_edge.reserve(phase.edges.size());
    for (const auto& edge : phase.edges) {
      const int src = proc_of_task[static_cast<std::size_t>(edge.src)];
      const int dst = proc_of_task[static_cast<std::size_t>(edge.dst)];
      routing[k].route_of_edge.push_back(
          src == dst ? Route{{src}, {}}
                     : greedy_shortest_route(ftopo, src, dst));
    }
  }
  return routing;
}

/// Translates faulted-link-id routing back into base link ids.
std::vector<PhaseRouting> routing_to_base(
    const FaultedTopology& faults, std::vector<PhaseRouting> routing) {
  for (auto& phase : routing) {
    for (auto& route : phase.route_of_edge) {
      route = faults.to_base(std::move(route));
    }
  }
  return routing;
}

}  // namespace

RepairResult repair_mapping(const TaskGraph& graph,
                            const FaultedTopology& faults,
                            const Mapping& mapping,
                            const RepairOptions& options) {
  const Topology& base = faults.base();
  const Deadline deadline(options.time_budget_ms);
  const trace::Span span("repair");

  std::vector<int> proc = mapping.proc_of_task();
  if (static_cast<int>(proc.size()) != graph.num_tasks()) {
    throw MappingError("repair: mapping does not cover the task graph");
  }
  if (mapping.routing.size() != graph.comm_phases().size()) {
    throw MappingError("repair: routing does not cover the comm phases");
  }

  RepairResult result;
  result.healthy_completion = completion_time(
      graph, proc, mapping.routing, base, options.model);

  if (faults.spec().empty()) {
    result.mapping = mapping;
    result.rung = RepairRung::None;
    result.details = "no faults injected; mapping unchanged";
    result.degraded_completion = result.healthy_completion;
    return result;
  }

  if (faults.healthy_procs().empty()) {
    throw MappingError(
        "repair: no healthy processors remain (spec: " +
        faults.spec().to_string() + ")");
  }

  const Topology& ftopo = faults.faulted();

  if (options.allow_migrate) {
    // --- Rung 1: migrate displaced tasks, re-route everything. ---
    const trace::Span rung_span("migrate");
    for (int t = 0; t < graph.num_tasks(); ++t) {
      const int p = proc[static_cast<std::size_t>(t)];
      if (!faults.healthy(p)) {
        const int to = nearest_healthy(faults, p);
        result.migrations.push_back({t, p, to});
        proc[static_cast<std::size_t>(t)] = to;
      }
    }
    std::vector<PhaseRouting> routing =
        reroute_on_faulted(graph, faults, proc);

    IncrementalCompletion inc(graph, ftopo, std::move(proc),
                              std::move(routing), options.model,
                              faults.faulted_link_factors());

    // Improvement loop over the displaced tasks only, with an
    // exponentially growing radius. Healthy candidates are enumerated
    // by faulted-topology distance from the task's current processor.
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      if (deadline.passed()) {
        result.deadline_hit = true;
        break;
      }
      const int radius = attempt < 30 ? (1 << attempt)
                                      : std::numeric_limits<int>::max() / 2;
      bool improved = false;
      for (const RepairMove& move : result.migrations) {
        if (deadline.passed()) {
          result.deadline_hit = true;
          break;
        }
        const int t = move.task;
        const int here =
            inc.proc_of_task()[static_cast<std::size_t>(t)];
        const DistanceRow row = ftopo.distance_row(here);
        std::int64_t best_delta = 0;
        int best_proc = -1;
        for (const int q : faults.healthy_procs()) {
          if (q == here) {
            continue;
          }
          const int d = row[q];
          if (d < 0 || d > radius) {
            continue;
          }
          const std::int64_t delta = inc.delta_move(t, q);
          if (delta < best_delta) {
            best_delta = delta;
            best_proc = q;
          }
        }
        if (best_proc >= 0) {
          inc.apply_move(t, best_proc);
          improved = true;
        }
      }
      ++result.attempts;
      if (result.deadline_hit || !improved) {
        break;
      }
    }
    // Record where each displaced task actually landed.
    for (RepairMove& move : result.migrations) {
      move.to_proc =
          inc.proc_of_task()[static_cast<std::size_t>(move.task)];
    }

    result.rung = RepairRung::Migrate;
    result.details =
        "migrated " + std::to_string(result.migrations.size()) +
        " task(s) in " + std::to_string(result.attempts) + " attempt(s)";
    trace::counter("migrations",
                   static_cast<std::int64_t>(result.migrations.size()));
    trace::counter("attempts", result.attempts);
    if (result.deadline_hit) {
      trace::instant("deadline_hit", "migrate improvement loop");
    }

    std::vector<int> repaired_proc = inc.proc_of_task();
    std::vector<PhaseRouting> repaired_routing = inc.routing();

    // --- Rung 2: local refinement polish (healthy candidates only:
    // dead processors have no surviving links in the faulted graph).
    if (options.allow_refine && !deadline.passed()) {
      const trace::Span refine_span("refine");
      PlacementRefineResult refined = refine_placement(
          graph, ftopo, std::move(repaired_proc),
          std::move(repaired_routing), options.model, /*load_bound_B=*/0,
          /*max_passes=*/4, faults.faulted_link_factors());
      if (refined.moves > 0) {
        result.rung = RepairRung::Refine;
        result.details += "; refinement -" +
                          std::to_string(refined.improvement()) +
                          " completion (" + std::to_string(refined.moves) +
                          " moves)";
      }
      trace::counter("refine_moves", refined.moves);
      trace::counter("refine_improvement", refined.improvement());
      repaired_proc = std::move(refined.proc_of_task);
      repaired_routing = std::move(refined.routing);
    } else if (options.allow_refine) {
      result.deadline_hit = true;
      result.details += "; refinement skipped (deadline)";
      trace::instant("deadline_hit", "refine rung skipped");
    }

    result.mapping = mapping_from_placement(
        repaired_proc,
        routing_to_base(faults, std::move(repaired_routing)),
        base.num_procs());
  } else if (options.allow_remap) {
    // --- Rung 3: full remap on the compacted healthy machine. ---
    const trace::Span rung_span("remap");
    const FaultedTopology::HealthySub sub = faults.healthy_subtopology();
    MapperOptions remap_options = options.remap_options;
    remap_options.portfolio_seed = options.seed != 0
                                       ? options.seed
                                       : remap_options.portfolio_seed;
    MapperReport report = map_computation(graph, sub.topo, remap_options);
    result.mapping = map_to_base(sub, std::move(report.mapping));
    result.rung = RepairRung::Remap;
    result.details = "full remap on " +
                     std::to_string(sub.topo.num_procs()) +
                     " healthy processor(s): " + report.details;
  } else {
    throw MappingError(
        "repair: every admissible rung is disabled "
        "(allow_migrate and allow_remap are both false)");
  }

  validate_mapping(result.mapping, graph, base);
  result.degraded_completion = degraded_completion_time(
      graph, result.mapping.proc_of_task(), result.mapping.routing, faults,
      options.model);
  if (trace::enabled()) {
    trace::counter("healthy_completion", result.healthy_completion);
    trace::counter("degraded_completion", result.degraded_completion);
    trace::instant("rung", to_string(result.rung));
  }
  return result;
}

}  // namespace oregami
