#include "oregami/mapper/nn_embed.hpp"

#include <algorithm>
#include <utility>

#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {

std::int64_t weighted_dilation(const Graph& cluster_graph,
                               const Embedding& embedding,
                               const Topology& topo) {
  std::int64_t total = 0;
  for (const auto& e : cluster_graph.edges()) {
    const int pu = embedding.proc_of_cluster[static_cast<std::size_t>(e.u)];
    const int pv = embedding.proc_of_cluster[static_cast<std::size_t>(e.v)];
    total += e.weight * topo.distance(pu, pv);
  }
  return total;
}

namespace {

// Streaming argmax/argmin with pluggable tie-breaking: without an rng
// the first (lowest-id) candidate wins ties, the historical NN-Embed
// rule; with an rng, ties are resolved by reservoir sampling, so each
// tied candidate is kept with equal probability using O(1) state.
class Pick {
 public:
  explicit Pick(SplitMix64* rng) : rng_(rng) {}

  /// Offers candidate `id` with `key`; `better` true when key strictly
  /// beats the incumbent's key (caller compares; Pick only counts ties).
  void offer(int id, bool better, bool equal) {
    if (chosen_ == -1 || better) {
      chosen_ = id;
      ties_ = 1;
    } else if (equal) {
      ++ties_;
      if (rng_ != nullptr && rng_->next_below(ties_) == 0) {
        chosen_ = id;
      }
    }
  }

  [[nodiscard]] int chosen() const { return chosen_; }

 private:
  SplitMix64* rng_;
  int chosen_ = -1;
  std::uint64_t ties_ = 1;
};

Embedding nn_embed_impl(const Graph& cluster_graph, const Topology& topo,
                        SplitMix64* rng) {
  const int c = cluster_graph.num_vertices();
  const int p = topo.num_procs();
  if (c > p) {
    throw MappingError("nn_embed: more clusters than processors");
  }

  Embedding embedding;
  embedding.proc_of_cluster.assign(static_cast<std::size_t>(c), -1);
  if (c == 0) {
    return embedding;
  }
  std::vector<bool> proc_used(static_cast<std::size_t>(p), false);
  std::vector<bool> placed(static_cast<std::size_t>(c), false);
  int placed_count = 0;

  auto place = [&](int cluster, int proc) {
    embedding.proc_of_cluster[static_cast<std::size_t>(cluster)] = proc;
    proc_used[static_cast<std::size_t>(proc)] = true;
    placed[static_cast<std::size_t>(cluster)] = true;
    ++placed_count;
  };

  // Seed: heaviest cluster edge onto a max-degree link.
  {
    Pick edge_pick(rng);
    for (int e = 0; e < cluster_graph.num_edges(); ++e) {
      const auto w = cluster_graph.edges()[static_cast<std::size_t>(e)].weight;
      const auto best =
          edge_pick.chosen() == -1
              ? w
              : cluster_graph.edges()[static_cast<std::size_t>(
                                          edge_pick.chosen())]
                    .weight;
      edge_pick.offer(e, w > best, w == best);
    }
    if (edge_pick.chosen() == -1) {
      // No communication at all: fill processors in index order.
      for (int cl = 0; cl < c; ++cl) {
        place(cl, cl);
      }
      return embedding;
    }
    Pick u_pick(rng);
    for (int v = 0; v < p; ++v) {
      const int d = topo.graph().degree(v);
      const int best =
          u_pick.chosen() == -1 ? d : topo.graph().degree(u_pick.chosen());
      u_pick.offer(v, d > best, d == best);
    }
    const int seed_u = u_pick.chosen();
    Pick v_pick(rng);
    for (const auto& a : topo.graph().neighbors(seed_u)) {
      const int d = topo.graph().degree(a.neighbor);
      const int best = v_pick.chosen() == -1
                           ? d
                           : topo.graph().degree(v_pick.chosen());
      v_pick.offer(a.neighbor, d > best, d == best);
    }
    const int seed_v = v_pick.chosen();
    OREGAMI_ASSERT(seed_v != -1, "topology must have at least one link");
    const auto& e =
        cluster_graph.edges()[static_cast<std::size_t>(edge_pick.chosen())];
    place(e.u, seed_u);
    place(e.v, seed_v);
  }

  std::vector<std::int64_t> weight_to_placed(static_cast<std::size_t>(c));
  std::vector<std::pair<int, std::int64_t>> placed_neighbors;
  while (placed_count < c) {
    // Next cluster: max communication to the placed set.
    Pick next_pick(rng);
    std::int64_t next_weight = -1;
    for (int cl = 0; cl < c; ++cl) {
      if (placed[static_cast<std::size_t>(cl)]) {
        continue;
      }
      std::int64_t w = 0;
      for (const auto& a : cluster_graph.neighbors(cl)) {
        if (placed[static_cast<std::size_t>(a.neighbor)]) {
          w += a.weight;
        }
      }
      weight_to_placed[static_cast<std::size_t>(cl)] = w;
      next_pick.offer(cl, w > next_weight, w == next_weight);
      next_weight =
          weight_to_placed[static_cast<std::size_t>(next_pick.chosen())];
    }
    const int next = next_pick.chosen();
    OREGAMI_ASSERT(next != -1, "an unplaced cluster must exist");

    // Best free processor: minimise weighted distance to placed
    // neighbours. With the lowest-id rule, clusters with no placed
    // neighbours land on the lowest free processor; seeded runs spread
    // them uniformly over the free set. The placed neighbours are
    // gathered once (same order as the adjacency walk, so the cost sum
    // is bit-identical) instead of being re-filtered per processor.
    placed_neighbors.clear();
    for (const auto& a : cluster_graph.neighbors(next)) {
      if (placed[static_cast<std::size_t>(a.neighbor)]) {
        placed_neighbors.emplace_back(
            embedding.proc_of_cluster[static_cast<std::size_t>(a.neighbor)],
            a.weight);
      }
    }
    Pick proc_pick(rng);
    std::int64_t best_cost = 0;
    for (int proc = 0; proc < p; ++proc) {
      if (proc_used[static_cast<std::size_t>(proc)]) {
        continue;
      }
      std::int64_t cost = 0;
      for (const auto& [other, weight] : placed_neighbors) {
        cost += weight * topo.distance(proc, other);
      }
      const bool first = proc_pick.chosen() == -1;
      proc_pick.offer(proc, !first && cost < best_cost,
                      !first && cost == best_cost);
      if (first || cost < best_cost) {
        best_cost = cost;
      }
    }
    place(next, proc_pick.chosen());
  }

  embedding.validate(p);
  return embedding;
}

}  // namespace

Embedding nn_embed(const Graph& cluster_graph, const Topology& topo) {
  return nn_embed_impl(cluster_graph, topo, nullptr);
}

Embedding nn_embed_seeded(const Graph& cluster_graph, const Topology& topo,
                          std::uint64_t seed) {
  SplitMix64 rng(seed);
  return nn_embed_impl(cluster_graph, topo, &rng);
}

}  // namespace oregami
