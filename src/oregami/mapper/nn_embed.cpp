#include "oregami/mapper/nn_embed.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

std::int64_t weighted_dilation(const Graph& cluster_graph,
                               const Embedding& embedding,
                               const Topology& topo) {
  std::int64_t total = 0;
  for (const auto& e : cluster_graph.edges()) {
    const int pu = embedding.proc_of_cluster[static_cast<std::size_t>(e.u)];
    const int pv = embedding.proc_of_cluster[static_cast<std::size_t>(e.v)];
    total += e.weight * topo.distance(pu, pv);
  }
  return total;
}

Embedding nn_embed(const Graph& cluster_graph, const Topology& topo) {
  const int c = cluster_graph.num_vertices();
  const int p = topo.num_procs();
  if (c > p) {
    throw MappingError("nn_embed: more clusters than processors");
  }

  Embedding embedding;
  embedding.proc_of_cluster.assign(static_cast<std::size_t>(c), -1);
  if (c == 0) {
    return embedding;
  }
  std::vector<bool> proc_used(static_cast<std::size_t>(p), false);
  std::vector<bool> placed(static_cast<std::size_t>(c), false);
  int placed_count = 0;

  auto place = [&](int cluster, int proc) {
    embedding.proc_of_cluster[static_cast<std::size_t>(cluster)] = proc;
    proc_used[static_cast<std::size_t>(proc)] = true;
    placed[static_cast<std::size_t>(cluster)] = true;
    ++placed_count;
  };

  // Seed: heaviest cluster edge onto a max-degree link.
  {
    int best_edge = -1;
    for (int e = 0; e < cluster_graph.num_edges(); ++e) {
      if (best_edge == -1 ||
          cluster_graph.edges()[static_cast<std::size_t>(e)].weight >
              cluster_graph.edges()[static_cast<std::size_t>(best_edge)]
                  .weight) {
        best_edge = e;
      }
    }
    int seed_u = 0;
    for (int v = 1; v < p; ++v) {
      if (topo.graph().degree(v) > topo.graph().degree(seed_u)) {
        seed_u = v;
      }
    }
    if (best_edge == -1) {
      // No communication at all: fill processors in index order.
      for (int cl = 0; cl < c; ++cl) {
        place(cl, cl);
      }
      return embedding;
    }
    int seed_v = -1;
    for (const auto& a : topo.graph().neighbors(seed_u)) {
      if (seed_v == -1 ||
          topo.graph().degree(a.neighbor) > topo.graph().degree(seed_v)) {
        seed_v = a.neighbor;
      }
    }
    OREGAMI_ASSERT(seed_v != -1, "topology must have at least one link");
    const auto& e =
        cluster_graph.edges()[static_cast<std::size_t>(best_edge)];
    place(e.u, seed_u);
    place(e.v, seed_v);
  }

  while (placed_count < c) {
    // Next cluster: max communication to placed set; tie -> lowest id.
    int next = -1;
    std::int64_t next_weight = -1;
    for (int cl = 0; cl < c; ++cl) {
      if (placed[static_cast<std::size_t>(cl)]) {
        continue;
      }
      std::int64_t w = 0;
      for (const auto& a : cluster_graph.neighbors(cl)) {
        if (placed[static_cast<std::size_t>(a.neighbor)]) {
          w += a.weight;
        }
      }
      if (w > next_weight) {
        next = cl;
        next_weight = w;
      }
    }
    OREGAMI_ASSERT(next != -1, "an unplaced cluster must exist");

    // Best free processor: minimise weighted distance to placed
    // neighbours; tie -> lowest processor id. Clusters with no placed
    // neighbours land on the free processor closest to the seed area
    // (distance sum of zero everywhere, so lowest id wins).
    int best_proc = -1;
    std::int64_t best_cost = 0;
    for (int proc = 0; proc < p; ++proc) {
      if (proc_used[static_cast<std::size_t>(proc)]) {
        continue;
      }
      std::int64_t cost = 0;
      for (const auto& a : cluster_graph.neighbors(next)) {
        if (placed[static_cast<std::size_t>(a.neighbor)]) {
          const int other =
              embedding
                  .proc_of_cluster[static_cast<std::size_t>(a.neighbor)];
          cost += a.weight * topo.distance(proc, other);
        }
      }
      if (best_proc == -1 || cost < best_cost) {
        best_proc = proc;
        best_cost = cost;
      }
    }
    place(next, best_proc);
  }

  embedding.validate(p);
  return embedding;
}

}  // namespace oregami
