// Aggregation-topology selection (paper §6): "many parallel algorithms
// use a specific tree topology to aggregate results when a variety of
// alternate communication topologies will suffice (any spanning tree
// ...). We would like to automatically select the aggregate topology
// that is 'compatible' with the communication topologies of other
// phases."
//
// Given the per-link load already committed by the other phases, this
// module picks a spanning tree of the *processor* graph rooted at the
// aggregation root that minimises the bottleneck (max per-link load
// including the new tree traffic), using a minimax variant of
// Dijkstra's algorithm; hop count breaks ties so paths stay short.
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"

namespace oregami {

struct AggregationTree {
  int root = 0;
  /// parent[p] = next processor toward the root (-1 for the root).
  std::vector<int> parent;
  /// Link toward the parent (-1 for the root).
  std::vector<int> uplink;
  /// Messages crossing each link when every processor sends one
  /// aggregated value up the tree (= subtree size below the link).
  std::vector<std::int64_t> tree_load;
  /// max over links of (existing + tree) load.
  std::int64_t bottleneck = 0;

  /// Route from processor p to the root along the tree.
  [[nodiscard]] Route route_to_root(const Topology& topo, int p) const;
};

/// Chooses the spanning tree. `existing_link_load` may be empty (all
/// zero) or one entry per link.
[[nodiscard]] AggregationTree choose_aggregation_tree(
    const Topology& topo, int root,
    const std::vector<std::int64_t>& existing_link_load = {});

/// Per-link load committed by a routed mapping (route counts summed
/// over all phases), for feeding into choose_aggregation_tree.
[[nodiscard]] std::vector<std::int64_t> committed_link_load(
    const std::vector<PhaseRouting>& routing, int num_links);

}  // namespace oregami
