// Algorithm MM-Route (paper §4.4): phase-aware routing by repeated
// maximal matchings.
//
// For each communication phase (synchronous edge set) the router works
// hop by hop. At each hop it builds a bipartite graph G = (X, Y, E):
// X = messages still in flight, Y = network links, with an edge when a
// link can serve as the message's next hop on some shortest route. A
// maximal matching assigns distinct links to as many messages as
// possible; matched messages advance, the graph is rebuilt without
// them, and matching repeats until every message has advanced one hop.
// Messages that reach their destination drop out. Because each matching
// round uses a link at most once, link contention within a phase stays
// low.
#pragma once

#include <string>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"

namespace oregami {

struct RouteOptions {
  enum class Matcher {
    GreedyMaximal,  ///< the paper's maximal matching
    HopcroftKarp,   ///< maximum matching (ablation alternative)
  };
  Matcher matcher = Matcher::GreedyMaximal;
};

/// One matching round in the trace: which message edge was assigned
/// which link (message identified by its index in the phase's edge
/// list).
struct MatchRound {
  int hop = 0;
  std::vector<std::pair<int, int>> assignments;  ///< (edge index, link)
};

/// Routing trace for one phase (for display and the Fig 6 bench).
struct PhaseRouteTrace {
  std::string phase_name;
  std::vector<MatchRound> rounds;
};

/// Routes every comm phase of `graph` for tasks placed by
/// `proc_of_task`. Returns one PhaseRouting per phase (routes aligned
/// with the phase's edge list); all routes are shortest paths.
/// `trace`, when non-null, receives the matching rounds.
[[nodiscard]] std::vector<PhaseRouting> mm_route(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo, const RouteOptions& options = {},
    std::vector<PhaseRouteTrace>* trace = nullptr);

}  // namespace oregami
