// Systolic-array synthesis for uniform recurrences (paper §4.2.1).
//
// When the LaRCS program passes the affine checks (integer-tuple labels
// over a polytope domain, uniform communication functions), the mapping
// problem reduces to classical space-time synthesis: find an integer
// schedule vector lambda with lambda . d >= 1 for every dependence
// vector d (minimising the makespan over the domain box), and allocate
// lattice points to processing elements by projecting along a chosen
// axis. Distinct points on one PE never collide in time because the
// schedule is strictly increasing along the projection axis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "oregami/core/mapping.hpp"
#include "oregami/larcs/affine.hpp"
#include "oregami/larcs/compiler.hpp"

namespace oregami {

struct SystolicMapping {
  std::vector<long> schedule;  ///< lambda
  int projection_axis = -1;    ///< dropped dimension
  long makespan = 0;           ///< number of time steps
  Contraction contraction;     ///< task -> PE (dense ids)
  std::vector<long> pe_extent; ///< PE array extents (remaining axes)
  std::vector<long> domain_lo; ///< label-domain box bounds
  std::vector<long> domain_hi;
  std::string description;

  /// Time step of a domain point under the schedule, offset so the
  /// earliest point of the box fires at step 0.
  [[nodiscard]] long time_of(const std::vector<long>& point) const;
};

/// Attempts systolic synthesis. Returns nullopt when the affine checks
/// fail, the domain has more than 3 dimensions, there are no
/// dependences, or no feasible schedule exists with coefficients in
/// [-3, 3].
[[nodiscard]] std::optional<SystolicMapping> systolic_map(
    const larcs::Program& program, const larcs::CompiledProgram& compiled);

}  // namespace oregami
