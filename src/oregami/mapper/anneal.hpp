// Simulated annealing over processor placements (paper §6's "new and
// improved algorithms" commitment; the modern recipe of Glantz et al.
// and the HTI-OVGU task-mapping field).
//
// The chain walks single-task moves scored by the completion model via
// IncrementalCompletion::delta_move -- the exact O(touched-state)
// evaluator built for placement refinement -- so one proposal costs the
// same as one refinement probe rather than a full model re-score.
// Downhill and sideways moves are always accepted; uphill moves are
// accepted with probability exp(-delta / T) under a geometric cooling
// schedule.
//
// Determinism contract: the result is a pure function of the inputs
// and `AnnealOptions::seed`. The proposal stream comes from a private
// SplitMix64, the chain is strictly sequential, and the returned state
// is the *best* state visited, reconstructed exactly by unwinding the
// evaluator's undo history past the last strict improvement. Two
// consequences the tests rely on:
//   * the result is never worse than the initial placement;
//   * when no proposal strictly improves on the start state, the
//     final placement, routing, and completion are bit-identical to
//     the input (the whole apply/undo chain round-trips).
// A positive `time_budget_ms` consults the wall clock and may cut the
// chain short (same caveat as the portfolio deadline); 0 and negative
// budgets never read the clock, so those modes stay bit-deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/metrics/completion_model.hpp"

namespace oregami {

struct AnnealOptions {
  /// Number of move proposals (the chain length). 0 = return the
  /// initial state untouched.
  int iterations = 4000;
  /// Seed of the private proposal stream.
  std::uint64_t seed = 0x5EEDA11u;
  /// Starting temperature; < 0 selects max(1, initial completion / 20).
  double initial_temp = -1.0;
  /// Geometric cooling factor applied after every proposal.
  double cooling = 0.999;
  /// Wall-clock deadline in milliseconds: 0 = none, < 0 = already
  /// expired (no proposals run; deterministic), > 0 = checked
  /// periodically while the chain runs.
  std::int64_t time_budget_ms = 0;
};

struct AnnealResult {
  std::vector<int> proc_of_task;
  std::vector<PhaseRouting> routing;  ///< greedy re-routes of moved edges
  std::int64_t completion_before = 0;
  std::int64_t completion_after = 0;  ///< best completion visited
  int proposed = 0;                   ///< proposals actually evaluated
  int accepted = 0;                   ///< moves committed to the chain
  int uphill = 0;                     ///< accepted with delta > 0
  bool deadline_hit = false;          ///< a positive budget cut the chain

  [[nodiscard]] std::int64_t improvement() const {
    return completion_before - completion_after;
  }
};

/// Runs the annealing chain from `proc_of_task` + `routing` (e.g. a
/// MAPPER-produced mapping). `link_factor` (optional, empty = all 1)
/// is the per-link serialisation multiplier forwarded to
/// IncrementalCompletion, so a chain on a degraded machine steers
/// traffic away from slowed links.
[[nodiscard]] AnnealResult anneal_placement(
    const TaskGraph& graph, const Topology& topo,
    std::vector<int> proc_of_task, std::vector<PhaseRouting> routing,
    const CostModel& model = {}, const AnnealOptions& options = {},
    std::vector<std::int64_t> link_factor = {});

}  // namespace oregami
