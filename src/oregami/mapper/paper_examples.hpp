// Concrete workloads reproducing the paper's worked examples, shared by
// the test suite and the benchmark harnesses.
//
// Fig 2 / Fig 6 (n-body) and Fig 4 (perfect broadcast) come straight
// from the LaRCS corpus (programs::nbody, programs::broadcast_vote).
// Fig 5's 12-task weighted graph is not reproduced in the text we have,
// so fig5_task_graph() is a *reconstruction* consistent with every
// stated fact: 12 tasks mapped to 3 processors under B = 4; the greedy
// phase merges six weight-ordered pairs and must skip a weight-15 edge
// because the combined cluster would hold 4 > B/2 tasks; the matching
// phase then yields total IPC = 6, which is optimal for this instance.
#pragma once

#include "oregami/core/task_graph.hpp"
#include "oregami/graph/graph.hpp"

namespace oregami::paper {

/// The Fig 5 reconstruction as an undirected weighted task graph
/// (MWM-Contract's input form): six heavy pairs
/// (20, 18, 16, 14, 12, 10) closed into a ring by cross edges
/// (15, 2, 3, 2, 3, 2).
[[nodiscard]] Graph fig5_task_graph();

/// Expected optimal IPC for fig5_task_graph() on 3 processors, B = 4.
inline constexpr std::int64_t kFig5OptimalIpc = 6;

/// The Fig 6 scenario: the 15-body task graph (Fig 2) whose chordal
/// phase is routed on an 8-processor hypercube. Message volume 1 so
/// contention counts messages.
[[nodiscard]] TaskGraph fig6_nbody15();

}  // namespace oregami::paper
