#include "oregami/mapper/group_contract.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

std::string to_string(GroupContractStatus status) {
  switch (status) {
    case GroupContractStatus::Ok:
      return "ok";
    case GroupContractStatus::PhaseNotBijective:
      return "a communication phase is not a bijection on the tasks";
    case GroupContractStatus::GroupTooLarge:
      return "generated group exceeds |X| (Cayley graph cannot match)";
    case GroupContractStatus::NotRegularAction:
      return "group does not act regularly on the tasks";
    case GroupContractStatus::NoSuitableSubgroup:
      return "no subgroup with the requested index";
  }
  return "?";
}

std::optional<Permutation> phase_permutation(const CommPhase& phase,
                                             int num_tasks) {
  std::vector<int> image(static_cast<std::size_t>(num_tasks), -1);
  for (const auto& e : phase.edges) {
    if (e.src < 0 || e.src >= num_tasks || e.dst < 0 ||
        e.dst >= num_tasks) {
      return std::nullopt;
    }
    if (image[static_cast<std::size_t>(e.src)] != -1) {
      return std::nullopt;  // two outgoing edges from one task
    }
    image[static_cast<std::size_t>(e.src)] = e.dst;
  }
  std::vector<bool> hit(static_cast<std::size_t>(num_tasks), false);
  for (const int y : image) {
    if (y == -1 || hit[static_cast<std::size_t>(y)]) {
      return std::nullopt;  // not total or not injective
    }
    hit[static_cast<std::size_t>(y)] = true;
  }
  return Permutation(std::move(image));
}

bool sylow_balanced_contraction_exists(long tasks, long clusters) {
  if (clusters <= 0 || tasks % clusters != 0) {
    return false;
  }
  long quotient = tasks / clusters;
  if (quotient == 1) {
    return true;
  }
  for (long p = 2; p * p <= quotient; ++p) {
    if (quotient % p == 0) {
      while (quotient % p == 0) {
        quotient /= p;
      }
      return quotient == 1;  // prime power iff nothing else remains
    }
  }
  return true;  // quotient itself is prime
}

namespace {

/// Internalized comm edges per cluster for a candidate coset partition;
/// returns -1 when clusters are not uniformly internalised (cannot
/// happen for true coset partitions of a regular action, but we verify
/// rather than assume).
int internalized_per_cluster(const TaskGraph& graph,
                             const std::vector<int>& cluster_of_task,
                             int num_clusters) {
  std::vector<int> internal(static_cast<std::size_t>(num_clusters), 0);
  for (const auto& phase : graph.comm_phases()) {
    for (const auto& e : phase.edges) {
      const int cs = cluster_of_task[static_cast<std::size_t>(e.src)];
      const int cd = cluster_of_task[static_cast<std::size_t>(e.dst)];
      if (cs == cd) {
        ++internal[static_cast<std::size_t>(cs)];
      }
    }
  }
  for (const int count : internal) {
    if (count != internal.front()) {
      return -1;
    }
  }
  return internal.empty() ? 0 : internal.front();
}

}  // namespace

GroupContractOutcome group_theoretic_contraction(const TaskGraph& graph,
                                                 int num_clusters) {
  GroupContractOutcome outcome;
  const int n = graph.num_tasks();
  if (num_clusters <= 0 || n <= 0 || n % num_clusters != 0) {
    outcome.status = GroupContractStatus::NoSuitableSubgroup;
    return outcome;
  }

  // 1. Each comm phase must be a bijection on the task set.
  std::vector<Permutation> generators;
  for (const auto& phase : graph.comm_phases()) {
    auto perm = phase_permutation(phase, n);
    if (!perm) {
      outcome.status = GroupContractStatus::PhaseNotBijective;
      return outcome;
    }
    generators.push_back(std::move(*perm));
  }
  if (generators.empty()) {
    outcome.status = GroupContractStatus::PhaseNotBijective;
    return outcome;
  }

  // 2. Generate G, aborting as soon as |G| would exceed |X|.
  auto group = PermutationGroup::generate(generators,
                                          static_cast<std::size_t>(n));
  if (!group) {
    outcome.status = GroupContractStatus::GroupTooLarge;
    return outcome;
  }

  // 3. Regular action check (paper: |G| = |X| and all elements have
  //    equal-length cycles <=> Cayley graph isomorphic to task graph).
  if (!group->acts_regularly()) {
    outcome.status = GroupContractStatus::NotRegularAction;
    return outcome;
  }

  // Task <-> element correspondence: task x <-> the unique g with
  // g(0) = x.
  std::vector<std::size_t> element_of_task(static_cast<std::size_t>(n));
  for (int x = 0; x < n; ++x) {
    element_of_task[static_cast<std::size_t>(x)] =
        group->element_mapping_base_to(x);
  }

  // 4. Enumerate candidate subgroups of order |G| / num_clusters.
  const auto target_order =
      static_cast<std::size_t>(n / num_clusters);
  std::vector<std::vector<std::size_t>> candidates;
  for (const std::size_t gen_idx : group->generator_indices()) {
    const auto sub = group->cyclic_subgroup(gen_idx);
    if (sub.size() == target_order) {
      candidates.push_back(sub);
    }
  }
  for (const auto& sub : group->cyclic_subgroups()) {
    if (sub.size() == target_order) {
      candidates.push_back(sub);
    }
  }
  if (group->order() <= 64) {
    for (const auto& sub : group->all_subgroups()) {
      if (sub.size() == target_order) {
        candidates.push_back(sub);
      }
    }
  }
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.empty()) {
    outcome.status = GroupContractStatus::NoSuitableSubgroup;
    return outcome;
  }

  // 5. Score candidates: prefer normal subgroups (true quotient
  //    groups), then maximal internalized communication; first in
  //    enumeration order on ties (generator-derived subgroups lead).
  struct Scored {
    std::vector<std::size_t> subgroup;
    bool normal = false;
    int internalized = 0;
    std::vector<int> cluster_of_task;
    std::vector<int> coset_of;
  };
  std::optional<Scored> best;
  for (const auto& sub : candidates) {
    Scored s;
    s.subgroup = sub;
    s.normal = group->is_normal(sub);
    s.coset_of = group->right_cosets(sub);
    s.cluster_of_task.resize(static_cast<std::size_t>(n));
    for (int x = 0; x < n; ++x) {
      s.cluster_of_task[static_cast<std::size_t>(x)] =
          s.coset_of[element_of_task[static_cast<std::size_t>(x)]];
    }
    s.internalized =
        internalized_per_cluster(graph, s.cluster_of_task, num_clusters);
    if (s.internalized < 0) {
      continue;  // non-uniform: skip (non-normal subgroup artefact)
    }
    const auto better = [&](const Scored& a, const Scored& b) {
      if (a.normal != b.normal) {
        return a.normal;
      }
      return a.internalized > b.internalized;
    };
    if (!best || better(s, *best)) {
      best = std::move(s);
    }
  }
  if (!best) {
    outcome.status = GroupContractStatus::NoSuitableSubgroup;
    return outcome;
  }

  GroupContraction result;
  result.contraction.num_clusters = num_clusters;
  result.contraction.cluster_of_task = best->cluster_of_task;
  result.contraction.validate(n);
  for (const auto& e : group->elements()) {
    result.element_cycles.push_back(e.to_cycle_string());
  }
  result.subgroup = best->subgroup;
  result.subgroup_normal = best->normal;
  result.internalized_per_cluster = best->internalized;
  result.quotient = quotient_cayley_graph(*group, best->coset_of);
  result.description =
      "Cayley quotient by a subgroup of order " +
      std::to_string(target_order) +
      (best->normal ? " (normal)" : " (non-normal)") + ", internalizing " +
      std::to_string(best->internalized) + " messages per cluster";

  outcome.status = GroupContractStatus::Ok;
  outcome.result = std::move(result);
  return outcome;
}

}  // namespace oregami
