#include "oregami/mapper/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <sstream>
#include <tuple>
#include <utility>

#include "oregami/mapper/anneal.hpp"
#include "oregami/mapper/list_schedule.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"
#include "oregami/support/text_table.hpp"
#include "oregami/support/thread_pool.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

PortfolioOptions portfolio_options_from(const MapperOptions& options) {
  PortfolioOptions popts;
  popts.num_seeded = options.portfolio;
  popts.jobs = options.jobs;
  popts.seed = options.portfolio_seed;
  popts.num_anneal = options.anneal;
  popts.heft = options.heft;
  return popts;
}

namespace {

/// Independent RNG stream for candidate `id`: SplitMix64 seeded by a
/// mix of the base seed and the id, so neighbouring ids decorrelate
/// and no candidate shares draws with another.
SplitMix64 candidate_stream(std::uint64_t base_seed, int id) {
  SplitMix64 mix(base_seed ^
                 (0x9E3779B97F4A7C15ULL *
                  (static_cast<std::uint64_t>(id) + 1)));
  return mix;
}

struct CandidateSpec {
  std::string label;
  std::function<std::optional<MapperReport>()> run;
};

/// The seeded general-path variants: cycle the MWM-Contract load bound
/// through {default, tightest feasible, default+1, default+2}, toggle
/// refinement every four variants, and give every variant its own
/// NN-Embed tie-break seed.
void add_seeded_variants(std::vector<CandidateSpec>* specs,
                         const TaskGraph& graph, const Topology& topo,
                         const MapperOptions& base,
                         const PortfolioOptions& options) {
  const int n = graph.num_tasks();
  const int p = topo.num_procs();
  const int default_b = 2 * ((n + 2 * p - 1) / (2 * p));
  const int tight_b = (n + p - 1) / p;
  const int bounds[4] = {-1, tight_b, default_b + 1, default_b + 2};
  const int first_id = static_cast<int>(specs->size());
  for (int i = 0; i < options.num_seeded; ++i) {
    MapperOptions variant = base;
    variant.portfolio = 0;
    variant.load_bound_B = bounds[i % 4];
    variant.refine = (i % 8) >= 4;
    SplitMix64 stream = candidate_stream(options.seed, first_id + i);
    const std::uint64_t nn_seed = stream.next_u64() | 1;  // never 0
    const int b_used = variant.load_bound_B < 0 ? default_b
                                                : variant.load_bound_B;
    specs->push_back(
        {"general B=" + std::to_string(b_used) +
             (variant.refine ? " refine" : "") + " seed#" +
             std::to_string(i),
         [&graph, &topo, variant, nn_seed] {
           return std::optional<MapperReport>(
               map_general_seeded(graph, topo, variant, nn_seed));
         }});
  }
}

/// The opt-in extended families (ISSUE 6): the HEFT critical-path list
/// scheduler and `num_anneal` simulated-annealing chains. Appended
/// AFTER the seeded variants, so turning them on never renumbers the
/// existing candidate ids. Each annealing candidate starts from the
/// deterministic general-path mapping and walks its own
/// (seed, id)-derived move stream; the portfolio's global time budget
/// is forwarded so a positive deadline also bounds each chain, while
/// non-positive budgets stay clock-free and bit-deterministic.
void add_extended_candidates(std::vector<CandidateSpec>* specs,
                             const TaskGraph& graph, const Topology& topo,
                             const MapperOptions& base,
                             const PortfolioOptions& options) {
  if (options.heft) {
    ListScheduleOptions lopts;
    lopts.model = options.model;
    lopts.time_budget_ms = options.time_budget_ms;
    specs->push_back(
        {"heft critical-path",
         [&graph, &topo, lopts, routing = base.routing] {
           const ListScheduleResult ls = list_schedule(graph, topo, lopts);
           MapperReport report;
           report.strategy = MapStrategy::ListSchedule;
           report.details = "HEFT upward-rank list schedule; modelled "
                            "makespan " + std::to_string(ls.makespan);
           if (ls.deadline_degraded > 0) {
             report.details += "; " + std::to_string(ls.deadline_degraded) +
                               " task(s) placed by deadline fallback";
           }
           report.mapping = mapping_from_placement(
               ls.proc_of_task, mm_route(graph, ls.proc_of_task, topo,
                                         routing),
               topo.num_procs());
           return std::optional<MapperReport>(std::move(report));
         }});
  }
  const int first_id = static_cast<int>(specs->size());
  for (int i = 0; i < options.num_anneal; ++i) {
    MapperOptions variant = base;
    variant.portfolio = 0;
    SplitMix64 stream = candidate_stream(options.seed, first_id + i);
    AnnealOptions aopts;
    aopts.seed = stream.next_u64();
    aopts.iterations = options.anneal_iterations;
    aopts.time_budget_ms = options.time_budget_ms;
    specs->push_back(
        {"anneal seed#" + std::to_string(i),
         [&graph, &topo, variant, aopts, model = options.model] {
           MapperReport init = map_general_seeded(graph, topo, variant, 0);
           AnnealResult sa = anneal_placement(
               graph, topo, init.mapping.proc_of_task(),
               std::move(init.mapping.routing), model, aopts);
           MapperReport report;
           report.strategy = MapStrategy::Anneal;
           report.details =
               "SA " + std::to_string(sa.proposed) + " proposals, " +
               std::to_string(sa.accepted) + " accepted (" +
               std::to_string(sa.uphill) + " uphill); completion " +
               std::to_string(sa.completion_before) + " -> " +
               std::to_string(sa.completion_after);
           report.mapping = mapping_from_placement(
               sa.proc_of_task, std::move(sa.routing), topo.num_procs());
           return std::optional<MapperReport>(std::move(report));
         }});
  }
}

/// Deterministic explanation of how the (completion, IPC, id) minimum
/// was decided, recorded on the report for --explain.
void record_win_reason(PortfolioReport* report) {
  const auto& winner =
      report->candidates[static_cast<std::size_t>(report->best_id)];
  int completion_ties = 0;
  int exact_ties = 0;
  std::int64_t runner_up_completion = -1;
  std::int64_t runner_up_ipc = -1;
  for (const auto& c : report->candidates) {
    if (!c.ok || c.id == winner.id) {
      continue;
    }
    if (c.completion == winner.completion) {
      ++completion_ties;
      if (c.external_ipc == winner.external_ipc) {
        ++exact_ties;
      } else if (runner_up_ipc < 0 || c.external_ipc < runner_up_ipc) {
        runner_up_ipc = c.external_ipc;
      }
    } else if (runner_up_completion < 0 ||
               c.completion < runner_up_completion) {
      runner_up_completion = c.completion;
    }
  }
  std::ostringstream why;
  if (completion_ties == 0) {
    report->tie_level = 1;
    why << "strictly best completion (" << winner.completion;
    if (runner_up_completion >= 0) {
      why << " vs " << runner_up_completion << " for the runner-up";
    }
    why << "); tie-break level 1 (completion)";
  } else if (exact_ties == 0) {
    report->tie_level = 2;
    why << "tied completion (" << winner.completion << ") with "
        << completion_ties << " candidate(s); best external IPC ("
        << winner.external_ipc;
    if (runner_up_ipc >= 0) {
      why << " vs " << runner_up_ipc;
    }
    why << "); tie-break level 2 (external IPC)";
  } else {
    report->tie_level = 3;
    why << "exact (completion, external IPC) tie with " << exact_ties
        << " candidate(s); lowest candidate id wins; tie-break level 3 "
           "(candidate id)";
  }
  report->win_reason = why.str();
}

PortfolioReport run_portfolio(const TaskGraph& graph, const Topology& topo,
                              const PortfolioOptions& options,
                              std::vector<CandidateSpec> specs) {
  const trace::Span portfolio_span("portfolio");
  const auto search_start = std::chrono::steady_clock::now();
  // Shared read-only state really is read-only under the pool: regular
  // families answer distance queries with closed-form oracles, and the
  // Custom family's lazy BFS table is published under std::call_once,
  // so no pre-warm is needed before fanning out.
  ThreadPool pool(options.jobs, "portfolio");
  // Deadline support: non-positive budgets never consult the clock
  // (0 = none, < 0 = already expired), keeping those modes
  // bit-deterministic. Candidate 0 is exempt so a result always exists.
  const std::int64_t budget = options.time_budget_ms;
  const auto deadline_at =
      search_start + std::chrono::milliseconds(budget > 0 ? budget : 0);
  const auto deadline_passed = [budget, deadline_at] {
    if (budget == 0) {
      return false;
    }
    if (budget < 0) {
      return true;
    }
    return std::chrono::steady_clock::now() >= deadline_at;
  };
  std::vector<std::future<PortfolioCandidate>> futures;
  futures.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    futures.push_back(pool.submit(
        [spec = std::move(specs[i]), id = static_cast<int>(i),
         deadline_passed, search_start] {
          // Every candidate's events land under the same deterministic
          // lane path no matter which worker (or the sole jobs=1
          // worker) picked the task up.
          const trace::LaneScope lane(
              trace::enabled() ? "portfolio/cand#" + std::to_string(id)
                               : std::string(),
              id + 1);
          PortfolioCandidate candidate;
          candidate.id = id;
          candidate.label = spec.label;
          const auto t0 = std::chrono::steady_clock::now();
          if (id != 0 && deadline_passed()) {
            candidate.note = "skipped (deadline)";
            candidate.skipped = true;
            // Not "how long the candidate ran" (it never did) but when
            // the deadline cut it off, so the timed table can show a
            // timing for skipped candidates too.
            candidate.wall_ms =
                std::chrono::duration<double, std::milli>(t0 - search_start)
                    .count();
            trace::instant("skipped_deadline");
            return candidate;
          }
          try {
            if (auto report = spec.run()) {
              candidate.ok = true;
              candidate.strategy = report->strategy;
              candidate.note = report->details;
              candidate.mapping = std::move(report->mapping);
            } else {
              candidate.note = "not admissible";
              trace::instant("not_admissible");
            }
          } catch (const MappingError& e) {
            candidate.note = std::string("infeasible: ") + e.what();
            trace::instant("infeasible");
          }
          candidate.wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          return candidate;
        }));
  }

  PortfolioReport report;
  report.candidates.reserve(futures.size());
  for (auto& future : futures) {
    report.candidates.push_back(future.get());  // rethrows non-mapping errors
  }

  // Phase identity for the provenance report.
  report.comm_phase_mult = graph.comm_phase_multiplicity();
  report.exec_phase_mult = graph.exec_phase_multiplicity();
  for (const auto& phase : graph.comm_phases()) {
    report.comm_phase_names.push_back(phase.name);
  }
  for (const auto& phase : graph.exec_phases()) {
    report.exec_phase_names.push_back(phase.name);
  }

  // Score sequentially (cheap relative to mapping) and select the
  // winner by (completion, external IPC, id) -- never completion order.
  const trace::Span score_span("score");
  for (auto& candidate : report.candidates) {
    if (!candidate.ok) {
      continue;
    }
    const auto procs = candidate.mapping.proc_of_task();
    const PlacementObjectives objectives = extract_objectives(
        graph, procs, candidate.mapping.routing, topo, options.model);
    candidate.completion = objectives.completion;
    candidate.external_ipc = objectives.external_ipc;
    candidate.max_load = objectives.max_load;
    // Per-phase decomposition of the modelled score (what --explain
    // prints; the sum re-composed through the phase expression is the
    // completion above).
    candidate.comm_cost.reserve(graph.comm_phases().size());
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      candidate.comm_cost.push_back(comm_phase_time(
          graph, static_cast<int>(k),
          candidate.mapping.routing[k], topo, options.model));
    }
    candidate.exec_cost.reserve(graph.exec_phases().size());
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      candidate.exec_cost.push_back(exec_phase_time(
          graph, static_cast<int>(k), procs, topo.num_procs()));
    }
    if (trace::enabled()) {
      const std::string prefix = "cand#" + std::to_string(candidate.id);
      trace::counter(prefix + "/completion", candidate.completion);
      trace::counter(prefix + "/external_ipc", candidate.external_ipc);
    }
    const bool better =
        report.best_id < 0 ||
        std::tie(candidate.completion, candidate.external_ipc) <
            std::tie(report.candidates[static_cast<std::size_t>(
                                           report.best_id)]
                         .completion,
                     report.candidates[static_cast<std::size_t>(
                                           report.best_id)]
                         .external_ipc);
    if (better) {
      report.best_id = candidate.id;
    }
  }
  if (report.best_id < 0) {
    throw MappingError("portfolio: no feasible candidate");
  }
  record_win_reason(&report);

  const auto& winner =
      report.candidates[static_cast<std::size_t>(report.best_id)];
  report.best.strategy = winner.strategy;
  report.best.details = "portfolio winner '" + winner.label + "' of " +
                        std::to_string(report.candidates.size()) +
                        " candidates; " + winner.note;
  report.best.mapping = winner.mapping;
  report.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - search_start)
                          .count();
  if (trace::enabled()) {
    trace::counter("winner_id", report.best_id);
    trace::counter("tie_level", report.tie_level);
    trace::instant("winner", report.win_reason);
  }
  return report;
}

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

}  // namespace

std::string PortfolioReport::table() const {
  TextTable t({"id", "candidate", "strategy", "completion", "ext-IPC",
               "status"});
  for (const auto& c : candidates) {
    t.add_row({std::to_string(c.id), c.label,
               c.ok ? to_string(c.strategy) : "-",
               c.ok ? std::to_string(c.completion) : "-",
               c.ok ? std::to_string(c.external_ipc) : "-",
               c.id == best_id ? "** best **" : (c.ok ? "ok" : c.note)});
  }
  return t.to_string();
}

std::string PortfolioReport::timed_table() const {
  TextTable t({"id", "candidate", "strategy", "completion", "ext-IPC",
               "wall-ms", "status"});
  for (const auto& c : candidates) {
    std::string status =
        c.id == best_id ? "** best **" : (c.ok ? "ok" : c.note);
    if (c.skipped) {
      status = "skipped (deadline @ " + format_ms(c.wall_ms) + "ms)";
    }
    t.add_row({std::to_string(c.id), c.label,
               c.ok ? to_string(c.strategy) : "-",
               c.ok ? std::to_string(c.completion) : "-",
               c.ok ? std::to_string(c.external_ipc) : "-",
               format_ms(c.wall_ms), status});
  }
  return t.to_string();
}

std::string PortfolioReport::explain(bool with_timing) const {
  OREGAMI_ASSERT(best_id >= 0, "explain() requires a scored report");
  const auto& w = candidates[static_cast<std::size_t>(best_id)];
  std::ostringstream out;
  out << "decision provenance: portfolio of " << candidates.size()
      << " candidates\n";
  out << "winner: candidate " << w.id << " '" << w.label << "' ("
      << to_string(w.strategy) << ")\n";
  out << "reason: " << win_reason << "\n";
  out << "modelled completion: " << w.completion
      << "  external IPC: " << w.external_ipc << "\n";
  out << "per-phase cost breakdown (winner, time = modelled phase cost,\n"
         "mult = phase-expression multiplicity):\n";
  TextTable t({"phase", "kind", "mult", "time", "mult*time"});
  for (std::size_t k = 0; k < comm_phase_names.size(); ++k) {
    const std::int64_t time = k < w.comm_cost.size() ? w.comm_cost[k] : 0;
    const auto mult = static_cast<std::int64_t>(comm_phase_mult[k]);
    t.add_row({comm_phase_names[k], "comm", std::to_string(mult),
               std::to_string(time), std::to_string(mult * time)});
  }
  for (std::size_t k = 0; k < exec_phase_names.size(); ++k) {
    const std::int64_t time = k < w.exec_cost.size() ? w.exec_cost[k] : 0;
    const auto mult = static_cast<std::int64_t>(exec_phase_mult[k]);
    t.add_row({exec_phase_names[k], "exec", std::to_string(mult),
               std::to_string(time), std::to_string(mult * time)});
  }
  out << t.to_string();
  out << "candidate table:\n" << (with_timing ? timed_table() : table());
  if (with_timing) {
    out << "portfolio search wall time: " << format_ms(elapsed_ms)
        << " ms\n";
  }
  return out.str();
}

std::vector<int> PortfolioReport::pareto_front() const {
  std::vector<const PortfolioCandidate*> feasible;
  for (const auto& c : candidates) {
    if (c.ok) {
      feasible.push_back(&c);
    }
  }
  std::vector<int> front;
  for (const auto* a : feasible) {
    bool dominated = false;
    for (const auto* b : feasible) {
      if (b == a) {
        continue;
      }
      const bool no_worse = b->completion <= a->completion &&
                            b->external_ipc <= a->external_ipc &&
                            b->max_load <= a->max_load;
      const bool strictly_better = b->completion < a->completion ||
                                   b->external_ipc < a->external_ipc ||
                                   b->max_load < a->max_load;
      // Exact-triple ties: only the lowest id survives (keeps the
      // front free of duplicates without a separate dedup pass).
      if (no_worse && (strictly_better || b->id < a->id)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      front.push_back(a->id);
    }
  }
  std::sort(front.begin(), front.end(), [this](int x, int y) {
    const auto& a = candidates[static_cast<std::size_t>(x)];
    const auto& b = candidates[static_cast<std::size_t>(y)];
    return std::make_tuple(a.completion, a.external_ipc, a.max_load, a.id) <
           std::make_tuple(b.completion, b.external_ipc, b.max_load, b.id);
  });
  return front;
}

std::string PortfolioReport::pareto() const {
  OREGAMI_ASSERT(best_id >= 0, "pareto() requires a scored report");
  const std::vector<int> front = pareto_front();
  std::size_t feasible = 0;
  for (const auto& c : candidates) {
    feasible += c.ok ? 1 : 0;
  }
  std::ostringstream out;
  out << "Pareto front over (completion, external IPC, max exec load): "
      << front.size() << " of " << feasible
      << " feasible candidate(s) non-dominated\n";
  TextTable t(
      {"id", "candidate", "completion", "ext-IPC", "max-load", "status"});
  bool best_on_front = false;
  const auto add_candidate_row = [&t, this](int id, const std::string& status) {
    const auto& c = candidates[static_cast<std::size_t>(id)];
    t.add_row({std::to_string(c.id), c.label, std::to_string(c.completion),
               std::to_string(c.external_ipc), std::to_string(c.max_load),
               status});
  };
  for (const int id : front) {
    best_on_front = best_on_front || id == best_id;
    add_candidate_row(id, id == best_id ? "** best **" : "non-dominated");
  }
  if (!best_on_front) {
    // The winner minimises (completion, IPC, id) but another candidate
    // matched both and carried a lower max load; keep the winner
    // visible rather than silently dropping it.
    add_candidate_row(best_id, "** best ** (dominated on max-load)");
  }
  out << t.to_string();
  return out.str();
}

PortfolioReport portfolio_map_computation(const TaskGraph& graph,
                                          const Topology& topo,
                                          const MapperOptions& base,
                                          const PortfolioOptions& options) {
  if (graph.num_tasks() == 0) {
    throw MappingError("cannot map an empty task graph");
  }
  MapperOptions single = base;
  single.portfolio = 0;
  std::vector<CandidateSpec> specs;
  specs.push_back({"fig3 single-shot", [&graph, &topo, single] {
                     return std::optional<MapperReport>(
                         map_computation(graph, topo, single));
                   }});
  if (single.allow_canned) {
    specs.push_back({"canned", [&graph, &topo, single] {
                       return try_strategy(MapStrategy::Canned, graph, topo,
                                           single);
                     }});
  }
  if (single.allow_group) {
    specs.push_back({"group-theoretic", [&graph, &topo, single] {
                       return try_strategy(MapStrategy::GroupTheoretic,
                                           graph, topo, single);
                     }});
  }
  MapperOptions flipped = single;
  flipped.refine = !single.refine;
  specs.push_back(
      {std::string("general ") + (flipped.refine ? "refine" : "no-refine"),
       [&graph, &topo, flipped] {
         return try_strategy(MapStrategy::General, graph, topo, flipped);
       }});
  add_seeded_variants(&specs, graph, topo, single, options);
  add_extended_candidates(&specs, graph, topo, single, options);
  return run_portfolio(graph, topo, options, std::move(specs));
}

PortfolioReport portfolio_map_program(const larcs::Program& program,
                                      const larcs::CompiledProgram& compiled,
                                      const Topology& topo,
                                      const MapperOptions& base,
                                      const PortfolioOptions& options) {
  const TaskGraph& graph = compiled.graph;
  if (graph.num_tasks() == 0) {
    throw MappingError("cannot map an empty task graph");
  }
  MapperOptions single = base;
  single.portfolio = 0;
  std::vector<CandidateSpec> specs;
  specs.push_back({"fig3 single-shot",
                   [&program, &compiled, &topo, single] {
                     return std::optional<MapperReport>(
                         map_program(program, compiled, topo, single));
                   }});
  if (single.allow_systolic) {
    specs.push_back({"systolic", [&program, &compiled, &topo, single] {
                       return try_systolic(program, compiled, topo, single);
                     }});
  }
  if (single.allow_canned) {
    specs.push_back({"canned", [&graph, &topo, single] {
                       return try_strategy(MapStrategy::Canned, graph, topo,
                                           single);
                     }});
  }
  if (single.allow_group) {
    specs.push_back({"group-theoretic", [&graph, &topo, single] {
                       return try_strategy(MapStrategy::GroupTheoretic,
                                           graph, topo, single);
                     }});
  }
  MapperOptions flipped = single;
  flipped.refine = !single.refine;
  specs.push_back(
      {std::string("general ") + (flipped.refine ? "refine" : "no-refine"),
       [&graph, &topo, flipped] {
         return try_strategy(MapStrategy::General, graph, topo, flipped);
       }});
  add_seeded_variants(&specs, graph, topo, single, options);
  add_extended_candidates(&specs, graph, topo, single, options);
  return run_portfolio(graph, topo, options, std::move(specs));
}

}  // namespace oregami
