// The parallel portfolio mapper: instead of walking the Fig-3 decision
// tree once, run *every* admissible strategy plus N seeded variants of
// the general path concurrently, score each complete mapping with the
// METRICS completion-time model, and keep the best. Portfolio /
// multi-start search dominates single-shot heuristics for static
// mapping (Glantz et al.), and the candidates here are embarrassingly
// parallel -- each owns its RNG and only reads the shared task graph
// and (pre-warmed) topology.
//
// Determinism contract: the result is a pure function of the inputs
// and `PortfolioOptions::seed`. Worker count and OS scheduling never
// change it, because
//   * the candidate list is enumerated up front in a fixed order and
//     each candidate id derives its own SplitMix64 stream from
//     (seed, id) -- no shared RNG, no rng-draw races;
//   * candidates never communicate; results are collected by candidate
//     id, not completion order;
//   * the winner is the minimum of (completion, external IPC,
//     candidate id) -- ties break by id, never by "first finished".
//
// Candidate 0 is always the exact single-shot pipeline the caller
// would have run with portfolio mode off, so best-of-N can only match
// or beat single-shot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oregami/mapper/driver.hpp"
#include "oregami/metrics/completion_model.hpp"

namespace oregami {

struct PortfolioOptions {
  /// N: seeded general-path variants (load bound x refine x NN-Embed
  /// tie-break seed), in addition to the strategy candidates.
  int num_seeded = 8;
  /// Worker threads; 0 = hardware_concurrency. Never affects results.
  int jobs = 1;
  /// Base seed; candidate i uses an independent stream derived from
  /// (seed, i).
  std::uint64_t seed = 0x09E6A311u;
  /// Cost model used to score candidates.
  CostModel model;
  /// Extended candidate families, both off by default so golden
  /// portfolio outputs stay byte-identical. `num_anneal` > 0 appends
  /// that many simulated-annealing candidates (mapper/anneal.hpp), each
  /// chaining from the deterministic general-path mapping with its own
  /// (seed, id)-derived move stream; `heft` appends the HEFT
  /// critical-path list-scheduling candidate (mapper/list_schedule.hpp).
  /// Extended candidates are appended AFTER the seeded variants, so
  /// enabling them never renumbers the existing candidate ids.
  int num_anneal = 0;
  bool heft = false;
  /// Chain length of each annealing candidate.
  int anneal_iterations = 4000;
  /// Wall-clock deadline for the search, in milliseconds. 0 = no
  /// deadline. Candidate 0 (the exact single-shot pipeline) ALWAYS
  /// runs, so the search still returns a mapping; every other
  /// candidate checks the deadline when its task starts and is skipped
  /// (reported as "skipped (deadline)") once it has passed. A deadline
  /// only ever shrinks the completed set -- the winner among completed
  /// candidates is still the deterministic (completion, external IPC,
  /// id) minimum. Negative = already expired, so exactly candidate 0
  /// runs (deterministic; used by the deadline tests).
  std::int64_t time_budget_ms = 0;
};

/// Builds PortfolioOptions from the portfolio fields of MapperOptions
/// (used by the map_computation/map_program opt-in dispatch).
[[nodiscard]] PortfolioOptions portfolio_options_from(
    const MapperOptions& options);

/// One scored portfolio candidate (kept for the report table even when
/// the candidate was inadmissible or infeasible).
struct PortfolioCandidate {
  int id = 0;
  std::string label;     ///< e.g. "general B=5 refine nn-seed"
  bool ok = false;       ///< produced a valid mapping
  bool skipped = false;  ///< deadline skipped the candidate entirely
  std::string note;      ///< strategy details, or why it failed
  MapStrategy strategy = MapStrategy::General;
  std::int64_t completion = 0;    ///< modelled completion time
  std::int64_t external_ipc = 0;  ///< multiplicity-weighted cross-proc volume
  /// Maximum multiplicity-weighted per-processor exec load (the third
  /// Pareto objective; deliberately NOT a table() column so the golden
  /// candidate table stays byte-pinned).
  std::int64_t max_load = 0;
  Mapping mapping;                ///< empty when !ok
  /// Wall-clock time the candidate's task spent running (or, for a
  /// skipped candidate, the elapsed search time at the moment the
  /// deadline skipped it). Timing-only: never part of table() or any
  /// determinism contract.
  double wall_ms = 0.0;
  /// Modelled per-phase decomposition of `completion` (index-aligned
  /// with the task graph's comm/exec phases); empty when !ok. Feeds
  /// the --explain provenance report.
  std::vector<std::int64_t> comm_cost;
  std::vector<std::int64_t> exec_cost;
};

struct PortfolioReport {
  MapperReport best;  ///< winning candidate as a regular MapperReport
  int best_id = -1;
  std::vector<PortfolioCandidate> candidates;  ///< in candidate-id order
  /// Why the winner won: 1 = strictly best completion, 2 = tied
  /// completion broken by external IPC, 3 = exact (completion, IPC)
  /// tie broken by lowest candidate id.
  int tie_level = 1;
  /// Human-readable version of the above (deterministic).
  std::string win_reason;
  /// Phase names + multiplicities captured from the task graph so the
  /// provenance report is self-contained.
  std::vector<std::string> comm_phase_names;
  std::vector<std::string> exec_phase_names;
  std::vector<long> comm_phase_mult;
  std::vector<long> exec_phase_mult;
  /// Wall-clock duration of the whole search (timing-only).
  double elapsed_ms = 0.0;

  /// Fixed-width per-candidate report table (deterministic; contains
  /// no timing or worker-count information).
  [[nodiscard]] std::string table() const;

  /// table() plus per-candidate wall-time columns; skipped candidates
  /// show the elapsed search time at which the deadline cut them off
  /// instead of no timing at all. NOT deterministic (wall clock); the
  /// CLI prints this one, tests pin table().
  [[nodiscard]] std::string timed_table() const;

  /// Decision-provenance report: the candidate table, the winning
  /// candidate's per-phase cost breakdown, and the reason it won
  /// (tie-break level included). Deterministic unless `with_timing`.
  [[nodiscard]] std::string explain(bool with_timing = false) const;

  /// Candidate ids on the Pareto front of (completion, external IPC,
  /// max exec load), all minimised: a candidate is kept iff no other
  /// feasible candidate is at least as good on every objective and
  /// strictly better on one (among exact-triple ties only the lowest
  /// id survives). Sorted by (completion, external IPC, max load, id);
  /// deterministic.
  [[nodiscard]] std::vector<int> pareto_front() const;

  /// The Pareto front rendered as a fixed-width table (deterministic;
  /// no timing). The portfolio winner is marked when it sits on the
  /// front; when another candidate dominates it on max load, it is
  /// appended as an explicitly-marked extra row instead, so the winner
  /// is always visible.
  [[nodiscard]] std::string pareto() const;
};

/// Portfolio search over a bare task graph: candidates are the
/// single-shot pipeline, each admissible Fig-3 strategy, the general
/// path with refinement toggled, and `options.num_seeded` seeded
/// general variants. Throws MappingError when no candidate is
/// feasible.
[[nodiscard]] PortfolioReport portfolio_map_computation(
    const TaskGraph& graph, const Topology& topo,
    const MapperOptions& base = {},
    const PortfolioOptions& options = {});

/// Portfolio search for a compiled LaRCS program: additionally fields
/// a systolic-synthesis candidate when admissible.
[[nodiscard]] PortfolioReport portfolio_map_program(
    const larcs::Program& program, const larcs::CompiledProgram& compiled,
    const Topology& topo, const MapperOptions& base = {},
    const PortfolioOptions& options = {});

}  // namespace oregami
