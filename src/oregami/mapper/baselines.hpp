// Baseline mapping/routing strategies used by the benchmark harnesses
// to reproduce the paper's comparisons: phase-oblivious routing
// (dimension-order, random shortest path) and structure-oblivious
// placement (random embedding, round-robin contraction).
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"

namespace oregami {

/// Routes every comm phase with deterministic dimension-order (e-cube)
/// routes. Supported for hypercube/mesh/torus/ring/chain topologies.
[[nodiscard]] std::vector<PhaseRouting> route_dimension_order(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo);

/// Routes every comm phase by picking a uniformly random shortest path
/// per message (seeded, reproducible).
[[nodiscard]] std::vector<PhaseRouting> route_random_shortest(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo, std::uint64_t seed);

/// Routes every comm phase greedily along the lowest-numbered shortest
/// path (maximally contention-oblivious deterministic baseline).
[[nodiscard]] std::vector<PhaseRouting> route_greedy_shortest(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo);

/// Round-robin contraction: task t -> cluster t mod min(n, P).
[[nodiscard]] Contraction round_robin_contraction(int num_tasks,
                                                  int num_procs);

/// Contiguous-block contraction: task t -> cluster t * C / n.
[[nodiscard]] Contraction block_contraction(int num_tasks, int num_procs);

/// Uniformly random injective embedding (seeded).
[[nodiscard]] Embedding random_embedding(int num_clusters,
                                         const Topology& topo,
                                         std::uint64_t seed);

/// Identity embedding: cluster c -> processor c.
[[nodiscard]] Embedding identity_embedding(int num_clusters);

}  // namespace oregami
