#include "oregami/mapper/multilevel.hpp"

#include <algorithm>
#include <future>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "oregami/arch/routes.hpp"
#include "oregami/core/csr_graph.hpp"
#include "oregami/mapper/nn_embed.hpp"
#include "oregami/metrics/incremental.hpp"
#include "oregami/support/deadline.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/thread_pool.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

namespace {

// One rung of the V-cycle: the graph at this resolution, plus the
// projection onto the next-coarser level (empty at the coarsest).
struct Level {
  CsrTaskGraph csr;
  std::vector<std::int32_t> coarse_of_fine;
};

// Greedy canonical routes for every comm edge under `placement` — the
// same rule IncrementalCompletion replays on apply_move, so the
// evaluator starts cache-consistent.
std::vector<PhaseRouting> initial_routing(const TaskGraph& graph,
                                          const Topology& topo,
                                          const std::vector<int>& placement) {
  std::vector<PhaseRouting> routing(graph.comm_phases().size());
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& edges = graph.comm_phases()[k].edges;
    routing[k].route_of_edge.reserve(edges.size());
    for (const CommEdge& e : edges) {
      routing[k].route_of_edge.push_back(greedy_shortest_route(
          topo, placement[static_cast<std::size_t>(e.src)],
          placement[static_cast<std::size_t>(e.dst)]));
    }
  }
  return routing;
}

struct Proposal {
  std::int32_t task = 0;
  std::int32_t to = 0;
};

// Best strictly-gainful destination for `v` under the frozen
// `placement`, or -1. Gain is the weighted-distance improvement of v's
// own incident edges (the same objective NN-Embed greedily optimises);
// the serial commit re-probes with the exact completion delta, so this
// only has to be a good filter, not a perfect score. Pure function of
// (csr, topo, placement) — safe to fan out over workers.
int propose_move(const CsrTaskGraph& csr, const Topology& topo,
                 const std::vector<int>& placement, int v,
                 std::vector<int>& candidates) {
  const int p = placement[static_cast<std::size_t>(v)];
  candidates.clear();
  for (std::int32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
    const int q = placement[static_cast<std::size_t>(csr.neighbors[i])];
    if (q != p) candidates.push_back(q);
  }
  for (const Adjacency& a : topo.graph().neighbors(p)) {
    candidates.push_back(a.neighbor);
  }

  const DistanceRow row_p = topo.distance_row(p);
  std::int64_t base = 0;
  for (std::int32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
    base += csr.edge_weight[i] *
            row_p[placement[static_cast<std::size_t>(csr.neighbors[i])]];
  }

  int best = -1;
  std::int64_t best_gain = 0;
  for (const int q : candidates) {
    if (q == p) continue;
    const DistanceRow row_q = topo.distance_row(q);
    std::int64_t cost = 0;
    for (std::int32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
      cost += csr.edge_weight[i] *
              row_q[placement[static_cast<std::size_t>(csr.neighbors[i])]];
    }
    const std::int64_t gain = base - cost;
    // Strictly positive gain, ties to the lowest processor id; a
    // candidate listed twice can never displace itself.
    if (gain > best_gain || (gain == best_gain && best != -1 && q < best)) {
      best = q;
      best_gain = gain;
    }
  }
  return best;
}

// One level's boundary refinement. Workers propose against a frozen
// placement (chunked in ascending task order, futures collected in
// submission order); the caller's thread then walks the proposals in
// that same deterministic order, re-probing each with the exact
// incremental delta and committing only strict improvements. The
// result is therefore bit-identical for every worker count.
long refine_level(const CsrTaskGraph& csr, IncrementalCompletion& inc,
                  const Topology& topo, ThreadPool& pool, int rounds,
                  const Deadline& deadline, int level) {
  constexpr int kChunk = 512;
  const int n = csr.num_vertices();
  long total_moves = 0;
  std::vector<std::int32_t> boundary;
  for (int round = 0; round < rounds; ++round) {
    if (deadline.passed()) break;
    const std::vector<int>& placement = inc.proc_of_task();

    boundary.clear();
    for (int v = 0; v < n; ++v) {
      const int p = placement[static_cast<std::size_t>(v)];
      for (std::int32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
        if (placement[static_cast<std::size_t>(csr.neighbors[i])] != p) {
          boundary.push_back(v);
          break;
        }
      }
    }
    if (boundary.empty()) break;

    const int num_chunks =
        (static_cast<int>(boundary.size()) + kChunk - 1) / kChunk;
    std::vector<std::future<std::vector<Proposal>>> futures;
    futures.reserve(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c) {
      const int begin = c * kChunk;
      const int end = std::min(begin + kChunk,
                               static_cast<int>(boundary.size()));
      futures.push_back(pool.submit(
          [&csr, &topo, &placement, &boundary, begin, end, level, c]() {
            trace::LaneScope lane("multilevel/level#" + std::to_string(level) +
                                      "/chunk#" + std::to_string(c),
                                  c + 1);
            trace::Span span("propose");
            std::vector<Proposal> out;
            std::vector<int> scratch;
            for (int i = begin; i < end; ++i) {
              const int v = boundary[static_cast<std::size_t>(i)];
              const int q = propose_move(csr, topo, placement, v, scratch);
              if (q != -1) out.push_back({v, q});
            }
            return out;
          }));
    }

    // Drain every worker before the first commit: the frozen placement
    // the workers read must stay frozen until the proposal phase is
    // completely over.
    std::vector<Proposal> proposals;
    for (auto& f : futures) {
      std::vector<Proposal> chunk = f.get();
      proposals.insert(proposals.end(), chunk.begin(), chunk.end());
    }

    long moves = 0;
    for (const Proposal& p : proposals) {
      if (inc.delta_move(p.task, p.to) < 0) {
        inc.apply_move(p.task, p.to);
        ++moves;
      }
    }
    trace::counter("boundary", static_cast<std::int64_t>(boundary.size()));
    trace::counter("moves", moves);
    total_moves += moves;
    if (moves == 0) break;
  }
  return total_moves;
}

}  // namespace

MapperReport map_multilevel(const TaskGraph& graph, const Topology& topo,
                            const MultilevelOptions& options) {
  if (graph.num_tasks() == 0) {
    throw MappingError("multilevel: empty task graph");
  }
  if (topo.num_procs() > 1 && topo.num_links() == 0) {
    throw MappingError("multilevel: topology has no links");
  }
  trace::Span span("multilevel");
  const Deadline deadline(options.time_budget_ms);
  const int num_procs = topo.num_procs();

  // 1. Coarsen until one super-task per processor (or a level cap /
  // stalled matching — an edgeless graph matches nothing).
  std::vector<Level> levels;
  levels.push_back({CsrTaskGraph::from_task_graph(graph), {}});
  const int max_levels = options.max_levels <= 0
                             ? std::numeric_limits<int>::max()
                             : options.max_levels;
  while (static_cast<int>(levels.size()) - 1 < max_levels) {
    const CsrTaskGraph& cur = levels.back().csr;
    if (cur.num_vertices() <= num_procs) break;
    trace::Span coarsen_span("coarsen#" + std::to_string(levels.size() - 1));
    CoarsenResult step = coarsen_heavy_edge(
        cur, options.seed + levels.size() - 1, num_procs);
    if (step.coarse.num_vertices() == cur.num_vertices()) break;
    trace::counter("vertices", step.coarse.num_vertices());
    trace::counter("edges", step.coarse.num_edges());
    trace::counter("internalized_volume", step.internalized_weight);
    levels.back().coarse_of_fine = std::move(step.coarse_of_fine);
    levels.push_back({std::move(step.coarse), {}});
  }

  // 2. Initial map of the coarsest graph with the seed machinery.
  std::vector<int> placement;
  const char* init_how = nullptr;
  {
    trace::Span init_span("initial_map");
    const CsrTaskGraph& coarsest = levels.back().csr;
    const int nc = coarsest.num_vertices();
    placement.assign(static_cast<std::size_t>(nc), 0);
    if (nc <= num_procs) {
      const Embedding embedding =
          nn_embed_seeded(coarsest.to_graph(), topo, options.seed);
      for (int c = 0; c < nc; ++c) {
        placement[static_cast<std::size_t>(c)] =
            embedding.proc_of_cluster[static_cast<std::size_t>(c)];
      }
      init_how = "NN-Embed";
    } else {
      // A level cap can leave more super-tasks than processors;
      // round-robin balances loads and refinement untangles the rest.
      for (int c = 0; c < nc; ++c) {
        placement[static_cast<std::size_t>(c)] = c % num_procs;
      }
      init_how = "round-robin";
    }
  }

  // 3. Uncoarsen level by level, refining at each resolution.
  ThreadPool pool(ThreadPool::resolve_workers(options.jobs), "oregami-ml");
  long total_moves = 0;
  Mapping mapping;
  for (int k = static_cast<int>(levels.size()) - 1; k >= 0; --k) {
    trace::Span level_span("level#" + std::to_string(k));
    trace::counter("vertices", levels[static_cast<std::size_t>(k)]
                                   .csr.num_vertices());
    if (k == 0) {
      // Finest level scores the *real* task graph (all phases, the
      // true phase expression), so the last sweeps optimise the exact
      // completion objective.
      std::vector<PhaseRouting> routing =
          initial_routing(graph, topo, placement);
      IncrementalCompletion inc(graph, topo, placement, std::move(routing),
                                options.model);
      if (!deadline.passed()) {
        total_moves += refine_level(levels[0].csr, inc, topo, pool,
                                    options.refine_rounds, deadline, 0);
      }
      trace::counter("completion", inc.completion());
      mapping =
          mapping_from_placement(inc.proc_of_task(), inc.routing(), num_procs);
    } else {
      // Intermediate levels score the coarse aggregate (single folded
      // comm + exec phase) — same bottleneck structure, far fewer
      // vertices.
      const TaskGraph level_graph =
          levels[static_cast<std::size_t>(k)].csr.to_task_graph();
      std::vector<PhaseRouting> routing =
          initial_routing(level_graph, topo, placement);
      IncrementalCompletion inc(level_graph, topo, placement,
                                std::move(routing), options.model);
      if (!deadline.passed()) {
        total_moves += refine_level(levels[static_cast<std::size_t>(k)].csr,
                                    inc, topo, pool, options.refine_rounds,
                                    deadline, k);
      }
      const std::vector<std::int32_t>& projection =
          levels[static_cast<std::size_t>(k - 1)].coarse_of_fine;
      std::vector<int> fine(levels[static_cast<std::size_t>(k - 1)]
                                .csr.num_vertices());
      for (std::size_t v = 0; v < fine.size(); ++v) {
        fine[v] = inc.proc_of_task()[static_cast<std::size_t>(projection[v])];
      }
      placement = std::move(fine);
    }
  }

  MapperReport report;
  report.strategy = MapStrategy::Multilevel;
  report.details =
      "multilevel V-cycle: " + std::to_string(levels.size()) + " level(s), " +
      std::to_string(levels.front().csr.num_vertices()) + " -> " +
      std::to_string(levels.back().csr.num_vertices()) +
      " super-tasks; coarsest map " + init_how + "; " +
      std::to_string(total_moves) + " refining moves";
  report.mapping = std::move(mapping);
  return report;
}

}  // namespace oregami
