#include "oregami/mapper/canned.hpp"

#include <algorithm>

#include "oregami/graph/gray_code.hpp"
#include "oregami/mapper/binomial_mesh.hpp"
#include "oregami/mapper/cbt_mesh.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

GraphFamily family_from_hint(const std::string& hint) {
  if (hint == "ring") return GraphFamily::Ring;
  if (hint == "chain" || hint == "linear" || hint == "path") {
    return GraphFamily::Chain;
  }
  if (hint == "mesh" || hint == "grid") return GraphFamily::Mesh;
  if (hint == "hypercube" || hint == "cube") return GraphFamily::Hypercube;
  if (hint == "complete_binary_tree" || hint == "cbt") {
    return GraphFamily::CompleteBinaryTree;
  }
  if (hint == "binomial_tree" || hint == "binomial") {
    return GraphFamily::BinomialTree;
  }
  if (hint == "star") return GraphFamily::Star;
  if (hint == "complete" || hint == "clique") return GraphFamily::Complete;
  return GraphFamily::Unknown;
}

std::optional<RecognizedFamily> detect_specific_family(const Graph& g,
                                                       GraphFamily family) {
  switch (family) {
    case GraphFamily::Ring: return detect_ring(g);
    case GraphFamily::Chain: return detect_chain(g);
    case GraphFamily::Mesh: return detect_mesh(g);
    case GraphFamily::Hypercube: return detect_hypercube(g);
    case GraphFamily::CompleteBinaryTree:
      return detect_complete_binary_tree(g);
    case GraphFamily::BinomialTree: return detect_binomial_tree(g);
    case GraphFamily::Star: return detect_star(g);
    case GraphFamily::Complete: return detect_complete(g);
    case GraphFamily::Unknown: return std::nullopt;
  }
  return std::nullopt;
}

namespace {

/// Contraction of linearly ordered positions into `clusters` contiguous
/// balanced blocks.
Contraction contiguous_blocks(const std::vector<int>& position_of_task,
                              int clusters) {
  const int n = static_cast<int>(position_of_task.size());
  Contraction c;
  c.num_clusters = clusters;
  c.cluster_of_task.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const long pos = position_of_task[static_cast<std::size_t>(t)];
    c.cluster_of_task[static_cast<std::size_t>(t)] =
        static_cast<int>(pos * clusters / n);
  }
  return c;
}

/// Boustrophedon (snake) walk position -> mesh processor.
int snake_proc(const Topology& topo, int position) {
  const int cols = topo.shape()[1];
  const int row = position / cols;
  const int col = position % cols;
  return topo.at2d(row, (row % 2 == 0) ? col : cols - 1 - col);
}

/// Inorder rank (1-based) of heap index x in a complete BST over
/// [1, n]; n = 2^h - 1.
long inorder_of_heap(long x, long n) {
  long lo = 1;
  long hi = n;
  const int depth = floor_log2(static_cast<std::uint64_t>(x) + 1);
  for (int b = depth - 1; b >= 0; --b) {
    const long mid = (lo + hi) / 2;
    if (((x + 1) >> b) & 1) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return (lo + hi) / 2;
}

std::optional<CannedMapping> map_linear(const RecognizedFamily& family,
                                        const Topology& topo) {
  const int n = static_cast<int>(family.canonical_label.size());
  const int p = topo.num_procs();
  const int clusters = std::min(n, p);
  CannedMapping out;
  out.contraction = contiguous_blocks(family.canonical_label, clusters);
  out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(clusters));
  switch (topo.family()) {
    case TopoFamily::Ring:
    case TopoFamily::Chain:
      for (int c = 0; c < clusters; ++c) {
        out.embedding.proc_of_cluster[static_cast<std::size_t>(c)] = c;
      }
      out.description = to_string(family.family) +
                        " -> linear walk (dilation 1 on non-wrap edges)";
      return out;
    case TopoFamily::Hypercube:
      for (int c = 0; c < clusters; ++c) {
        out.embedding.proc_of_cluster[static_cast<std::size_t>(c)] =
            static_cast<int>(gray_code(static_cast<std::uint32_t>(c)));
      }
      out.description = to_string(family.family) +
                        " -> hypercube via reflected Gray code "
                        "(dilation 1 on non-wrap edges)";
      return out;
    case TopoFamily::Mesh:
    case TopoFamily::Torus:
      for (int c = 0; c < clusters; ++c) {
        out.embedding.proc_of_cluster[static_cast<std::size_t>(c)] =
            snake_proc(topo, c);
      }
      out.description = to_string(family.family) +
                        " -> mesh snake walk (dilation 1 on non-wrap "
                        "edges)";
      return out;
    default:
      return std::nullopt;
  }
}

std::optional<CannedMapping> map_mesh_family(const RecognizedFamily& family,
                                             const Topology& topo) {
  const int n = static_cast<int>(family.canonical_label.size());
  const int rows = family.params[0];
  const int cols = family.params[1];

  // Tile factor per axis for a target grid tr x tc.
  auto tiled_contraction = [&](int tr, int tc) {
    Contraction c;
    c.num_clusters = tr * tc;
    c.cluster_of_task.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      const int pos = family.canonical_label[static_cast<std::size_t>(t)];
      const long i = pos / cols;
      const long j = pos % cols;
      const long a = i * tr / rows;
      const long b = j * tc / cols;
      c.cluster_of_task[static_cast<std::size_t>(t)] =
          static_cast<int>(a * tc + b);
    }
    return c;
  };

  if (topo.family() == TopoFamily::Mesh ||
      topo.family() == TopoFamily::Torus) {
    const int tr = std::min(rows, topo.shape()[0]);
    const int tc = std::min(cols, topo.shape()[1]);
    CannedMapping out;
    out.contraction = tiled_contraction(tr, tc);
    out.embedding.proc_of_cluster.resize(
        static_cast<std::size_t>(tr * tc));
    for (int a = 0; a < tr; ++a) {
      for (int b = 0; b < tc; ++b) {
        out.embedding.proc_of_cluster[static_cast<std::size_t>(a * tc + b)] =
            topo.at2d(a, b);
      }
    }
    out.description = "mesh -> mesh block tiling (dilation 1)";
    return out;
  }

  if (topo.family() == TopoFamily::Hypercube) {
    // Need power-of-two tile factors tr x tc = 2^d with tr <= rows,
    // tc <= cols; prefer the most balanced split.
    const int d = topo.shape()[0];
    int best_a = -1;
    for (int a = 0; a <= d; ++a) {
      const long tr = 1L << a;
      const long tc = 1L << (d - a);
      if (tr <= rows && tc <= cols) {
        if (best_a == -1 ||
            std::abs(2 * a - d) < std::abs(2 * best_a - d)) {
          best_a = a;
        }
      }
    }
    if (best_a == -1) {
      // Task grid smaller than the cube: embed directly when both axes
      // are powers of two.
      if (!is_power_of_two(static_cast<std::uint64_t>(rows)) ||
          !is_power_of_two(static_cast<std::uint64_t>(cols)) ||
          static_cast<long>(rows) * cols > topo.num_procs()) {
        return std::nullopt;
      }
      const int cbits = floor_log2(static_cast<std::uint64_t>(cols));
      CannedMapping out;
      out.contraction = Contraction::identity(n);
      out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(n));
      for (int t = 0; t < n; ++t) {
        const int pos = family.canonical_label[static_cast<std::size_t>(t)];
        const auto i = static_cast<std::uint32_t>(pos / cols);
        const auto j = static_cast<std::uint32_t>(pos % cols);
        out.embedding.proc_of_cluster[static_cast<std::size_t>(t)] =
            static_cast<int>((gray_code(i) << cbits) | gray_code(j));
      }
      out.description =
          "mesh -> hypercube via per-axis Gray codes (dilation 1)";
      return out;
    }
    const int tr = 1 << best_a;
    const int tc = 1 << (d - best_a);
    const int cbits = d - best_a;
    CannedMapping out;
    out.contraction = tiled_contraction(tr, tc);
    out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(tr * tc));
    for (int a = 0; a < tr; ++a) {
      for (int b = 0; b < tc; ++b) {
        out.embedding.proc_of_cluster[static_cast<std::size_t>(a * tc + b)] =
            static_cast<int>(
                (gray_code(static_cast<std::uint32_t>(a)) << cbits) |
                gray_code(static_cast<std::uint32_t>(b)));
      }
    }
    out.description =
        "mesh -> hypercube via tiling + per-axis Gray codes (dilation 1)";
    return out;
  }
  return std::nullopt;
}

std::optional<CannedMapping> map_hypercube_family(
    const RecognizedFamily& family, const Topology& topo) {
  if (topo.family() != TopoFamily::Hypercube) {
    return std::nullopt;
  }
  const int n = static_cast<int>(family.canonical_label.size());
  const int k = family.params[0];
  const int d = topo.shape()[0];
  const int eff = std::min(k, d);
  const int clusters = 1 << eff;
  CannedMapping out;
  out.contraction.num_clusters = clusters;
  out.contraction.cluster_of_task.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    out.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
        family.canonical_label[static_cast<std::size_t>(t)] & (clusters - 1);
  }
  out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    out.embedding.proc_of_cluster[static_cast<std::size_t>(c)] = c;
  }
  out.description =
      k <= d ? "hypercube -> hypercube identity (dilation 1)"
             : "hypercube -> subcube contraction on low bits (dilation 1)";
  return out;
}

std::optional<CannedMapping> map_binomial_family(
    const RecognizedFamily& family, const Topology& topo) {
  const int n = static_cast<int>(family.canonical_label.size());
  const int k = family.params[0];

  if (topo.family() == TopoFamily::Hypercube) {
    // Address map: node m -> processor m & (2^d - 1). The edge into m
    // clears m's lowest set bit b: if b < d the processors differ in
    // exactly bit b (dilation 1); otherwise both endpoints are 0 mod
    // 2^d and the edge is internal.
    const int d = topo.shape()[0];
    const int eff = std::min(k, d);
    const int clusters = 1 << eff;
    CannedMapping out;
    out.contraction.num_clusters = clusters;
    out.contraction.cluster_of_task.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      out.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
          family.canonical_label[static_cast<std::size_t>(t)] &
          (clusters - 1);
    }
    out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(clusters));
    for (int c = 0; c < clusters; ++c) {
      out.embedding.proc_of_cluster[static_cast<std::size_t>(c)] = c;
    }
    out.description = "binomial tree -> hypercube address map (dilation 1)";
    return out;
  }

  if (topo.family() == TopoFamily::Mesh) {
    // The [LRG+89] embedding: contract to B_d (low-bit clusters), then
    // recursive-bisection placement with average dilation <= ~1.2.
    const int mesh_rows = topo.shape()[0];
    const int mesh_cols = topo.shape()[1];
    int d = std::min(k, floor_log2(static_cast<std::uint64_t>(
                            topo.num_procs())));
    // Shrink until the embedding rectangle fits the target mesh
    // (directly or transposed).
    auto fits = [&](int dd, bool& transpose) {
      const int er = 1 << ((dd + 1) / 2);
      const int ec = 1 << (dd / 2);
      if (er <= mesh_rows && ec <= mesh_cols) {
        transpose = false;
        return true;
      }
      if (ec <= mesh_rows && er <= mesh_cols) {
        transpose = true;
        return true;
      }
      return false;
    };
    bool transpose = false;
    while (d >= 0 && !fits(d, transpose)) {
      --d;
    }
    if (d < 0) {
      return std::nullopt;
    }
    const auto embedding = embed_binomial_in_mesh(d);
    const int clusters = 1 << d;
    CannedMapping out;
    out.contraction.num_clusters = clusters;
    out.contraction.cluster_of_task.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      out.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
          family.canonical_label[static_cast<std::size_t>(t)] &
          (clusters - 1);
    }
    out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(clusters));
    for (int c = 0; c < clusters; ++c) {
      const int pos = embedding.proc_of_node[static_cast<std::size_t>(c)];
      const int er = pos / embedding.cols;
      const int ec = pos % embedding.cols;
      out.embedding.proc_of_cluster[static_cast<std::size_t>(c)] =
          transpose ? topo.at2d(ec, er) : topo.at2d(er, ec);
    }
    out.description =
        "binomial tree -> mesh recursive bisection ([LRG+89], average "
        "dilation <= 1.2)";
    return out;
  }
  return std::nullopt;
}

std::optional<CannedMapping> map_cbt_family(const RecognizedFamily& family,
                                            const Topology& topo) {
  if (topo.family() == TopoFamily::Mesh) {
    // H-tree layout; needs a (2^ceil(h/2)-1) x (2^(floor(h/2)+1)-1)
    // sub-grid (about 2n processors), directly or transposed.
    const int n = static_cast<int>(family.canonical_label.size());
    const int h = family.params[0];
    const auto layout = embed_cbt_in_mesh(h);
    const int rows = topo.shape()[0];
    const int cols = topo.shape()[1];
    bool transpose = false;
    if (layout.rows <= rows && layout.cols <= cols) {
      transpose = false;
    } else if (layout.cols <= rows && layout.rows <= cols) {
      transpose = true;
    } else {
      return std::nullopt;
    }
    CannedMapping out;
    out.contraction = Contraction::identity(n);
    out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      const int heap = family.canonical_label[static_cast<std::size_t>(t)];
      const int cell = layout.cell_of_node[static_cast<std::size_t>(heap)];
      const int r = cell / layout.cols;
      const int c = cell % layout.cols;
      out.embedding.proc_of_cluster[static_cast<std::size_t>(t)] =
          transpose ? topo.at2d(c, r) : topo.at2d(r, c);
    }
    out.description =
        "complete binary tree -> mesh H-tree layout (leaf edges "
        "dilation 1)";
    return out;
  }
  if (topo.family() != TopoFamily::Hypercube) {
    return std::nullopt;
  }
  const int n = static_cast<int>(family.canonical_label.size());
  if (n > topo.num_procs()) {
    return std::nullopt;
  }
  // Inorder embedding: tree node (heap index) -> its inorder number in
  // [1, n]; parent-child inorder labels differ in at most 2 bits, so
  // dilation <= 2 in the cube.
  CannedMapping out;
  out.contraction = Contraction::identity(n);
  out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const long heap = family.canonical_label[static_cast<std::size_t>(t)];
    out.embedding.proc_of_cluster[static_cast<std::size_t>(t)] =
        static_cast<int>(inorder_of_heap(heap, n));
  }
  out.description =
      "complete binary tree -> hypercube inorder embedding (dilation <= 2)";
  return out;
}

std::optional<CannedMapping> map_star_family(const RecognizedFamily& family,
                                             const Topology& topo) {
  const int n = static_cast<int>(family.canonical_label.size());
  const int p = topo.num_procs();
  const int clusters = std::min(n, p);
  if (clusters < 2) {
    return std::nullopt;
  }

  // Hub cluster 0 alone; leaves round-robin over the rest.
  CannedMapping out;
  out.contraction.num_clusters = clusters;
  out.contraction.cluster_of_task.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const int pos = family.canonical_label[static_cast<std::size_t>(t)];
    out.contraction.cluster_of_task[static_cast<std::size_t>(t)] =
        pos == 0 ? 0 : 1 + (pos - 1) % (clusters - 1);
  }
  // Hub on the highest-degree processor, leaves in BFS order from it.
  int hub = 0;
  for (int v = 1; v < p; ++v) {
    if (topo.graph().degree(v) > topo.graph().degree(hub)) {
      hub = v;
    }
  }
  std::vector<int> order;
  order.push_back(hub);
  {
    std::vector<int> by_dist;
    for (int v = 0; v < p; ++v) {
      if (v != hub) {
        by_dist.push_back(v);
      }
    }
    std::stable_sort(by_dist.begin(), by_dist.end(), [&](int a, int b) {
      return topo.distance(hub, a) < topo.distance(hub, b);
    });
    order.insert(order.end(), by_dist.begin(), by_dist.end());
  }
  out.embedding.proc_of_cluster.resize(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    out.embedding.proc_of_cluster[static_cast<std::size_t>(c)] =
        order[static_cast<std::size_t>(c)];
  }
  out.description = "star -> hub on max-degree processor, leaves by "
                    "distance";
  return out;
}

}  // namespace

std::optional<CannedMapping> canned_mapping(const RecognizedFamily& family,
                                            const Topology& topo) {
  if (family.family == GraphFamily::Unknown ||
      family.canonical_label.empty()) {
    return std::nullopt;
  }
  std::optional<CannedMapping> result;
  switch (family.family) {
    case GraphFamily::Ring:
    case GraphFamily::Chain:
      result = map_linear(family, topo);
      break;
    case GraphFamily::Mesh:
      result = map_mesh_family(family, topo);
      break;
    case GraphFamily::Hypercube:
      result = map_hypercube_family(family, topo);
      break;
    case GraphFamily::BinomialTree:
      result = map_binomial_family(family, topo);
      break;
    case GraphFamily::CompleteBinaryTree:
      result = map_cbt_family(family, topo);
      break;
    case GraphFamily::Star:
      result = map_star_family(family, topo);
      break;
    case GraphFamily::Complete:
    case GraphFamily::Unknown:
      result = std::nullopt;
      break;
  }
  if (result) {
    result->contraction.validate(
        static_cast<int>(family.canonical_label.size()));
    result->embedding.validate(topo.num_procs());
  }
  return result;
}

}  // namespace oregami
