#include "oregami/larcs/compiler.hpp"

#include <algorithm>

#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/phase_expr.hpp"
#include "oregami/support/trace.hpp"

namespace oregami::larcs {

bool NodeTypeLayout::contains(const std::vector<long>& tuple) const {
  if (tuple.size() != lo.size()) {
    return false;
  }
  for (std::size_t d = 0; d < tuple.size(); ++d) {
    if (tuple[d] < lo[d] || tuple[d] > hi[d]) {
      return false;
    }
  }
  return true;
}

int NodeTypeLayout::task_of(const std::vector<long>& tuple) const {
  OREGAMI_ASSERT(contains(tuple), "label tuple outside nodetype domain");
  long offset = 0;
  for (std::size_t d = 0; d < tuple.size(); ++d) {
    offset = offset * (hi[d] - lo[d] + 1) + (tuple[d] - lo[d]);
  }
  return base + static_cast<int>(offset);
}

const NodeTypeLayout* CompiledProgram::find_layout(
    const std::string& nodetype) const {
  for (const auto& layout : layouts) {
    if (layout.name == nodetype) {
      return &layout;
    }
  }
  return nullptr;
}

namespace {

std::string tuple_name(const std::string& type,
                       const std::vector<long>& tuple) {
  std::string out = type + "(";
  for (std::size_t d = 0; d < tuple.size(); ++d) {
    if (d != 0) {
      out += ",";
    }
    out += std::to_string(tuple[d]);
  }
  return out + ")";
}

/// Iterates every tuple of the box [lo, hi], row-major (last dimension
/// fastest), invoking fn(tuple).
template <typename Fn>
void for_each_tuple(const std::vector<long>& lo, const std::vector<long>& hi,
                    Fn&& fn) {
  std::vector<long> tuple = lo;
  for (;;) {
    fn(tuple);
    int d = static_cast<int>(tuple.size()) - 1;
    while (d >= 0) {
      if (tuple[static_cast<std::size_t>(d)] < hi[static_cast<std::size_t>(d)]) {
        ++tuple[static_cast<std::size_t>(d)];
        break;
      }
      tuple[static_cast<std::size_t>(d)] = lo[static_cast<std::size_t>(d)];
      --d;
    }
    if (d < 0) {
      return;
    }
  }
}

}  // namespace

CompiledProgram compile(const Program& program,
                        const std::map<std::string, long>& bindings,
                        const CompileOptions& options) {
  const trace::Span span("compile");
  CompiledProgram out;
  out.family_hint = program.family_hint;

  // 1. Environment: parameters and imports must be bound; consts are
  //    evaluated in declaration order (and may use earlier names).
  Env env;
  for (const auto& name : program.params) {
    const auto it = bindings.find(name);
    if (it == bindings.end()) {
      throw LarcsError("missing binding for algorithm parameter '" + name +
                           "'",
                       program.loc);
    }
    env.bind(name, it->second);
  }
  for (const auto& name : program.imports) {
    const auto it = bindings.find(name);
    if (it == bindings.end()) {
      throw LarcsError("missing binding for imported variable '" + name +
                           "'",
                       program.loc);
    }
    env.bind(name, it->second);
  }
  for (const auto& [key, value] : bindings) {
    if (!env.has(key)) {
      throw LarcsError("binding '" + key +
                           "' matches no parameter or import",
                       program.loc);
    }
    (void)value;
  }
  for (const auto& [name, expr] : program.consts) {
    env.bind(name, eval(expr, env));
  }

  // 2. Node domains -> tasks.
  long total_tasks = 0;
  for (const auto& nt : program.nodetypes) {
    NodeTypeLayout layout;
    layout.name = nt.name;
    layout.base = static_cast<int>(total_tasks);
    layout.count = 1;
    for (const auto& dim : nt.dims) {
      const long lo = eval(dim.lo, env);
      const long hi = eval(dim.hi, env);
      if (hi < lo) {
        throw LarcsError("empty dimension range for binder '" + dim.binder +
                             "' in nodetype '" + nt.name + "'",
                         nt.loc);
      }
      layout.lo.push_back(lo);
      layout.hi.push_back(hi);
      layout.count *= (hi - lo + 1);
      if (layout.count > options.max_tasks) {
        throw LarcsError("nodetype '" + nt.name + "' exceeds task limit",
                         nt.loc);
      }
    }
    total_tasks += layout.count;
    if (total_tasks > options.max_tasks) {
      throw LarcsError("program exceeds the task limit", nt.loc);
    }
    for_each_tuple(layout.lo, layout.hi, [&](const std::vector<long>& t) {
      out.graph.add_task(tuple_name(nt.name, t), t);
    });
    out.layouts.push_back(std::move(layout));
  }
  if (program.nodetypes.size() == 1 &&
      program.nodetypes.front().node_symmetric) {
    out.graph.set_node_symmetric(true);
  }

  // 3. Communication phases.
  for (const auto& cp : program.comm_phases) {
    const int phase = out.graph.add_comm_phase(cp.name);
    for (const auto& rule : cp.rules) {
      const auto* src = out.find_layout(rule.src_type);
      const auto* dst = out.find_layout(rule.dst_type);
      OREGAMI_ASSERT(src != nullptr && dst != nullptr,
                     "parser guarantees nodetypes resolve");
      Env rule_env = env;
      for_each_tuple(src->lo, src->hi, [&](const std::vector<long>& t) {
        for (std::size_t d = 0; d < rule.pattern.size(); ++d) {
          rule_env.bind(rule.pattern[d], t[d]);
        }
        long k_lo = 0;
        long k_hi = 0;
        if (rule.forall_binder) {
          k_lo = eval(rule.forall_lo, rule_env);
          k_hi = eval(rule.forall_hi, rule_env);
        }
        for (long k = k_lo; k <= k_hi; ++k) {
          if (rule.forall_binder) {
            rule_env.bind(*rule.forall_binder, k);
          }
          if (rule.guard && !eval_bool(rule.guard, rule_env)) {
            continue;
          }
          std::vector<long> target;
          target.reserve(rule.target.size());
          for (const auto& comp : rule.target) {
            target.push_back(eval(comp, rule_env));
          }
          if (!dst->contains(target)) {
            throw LarcsError(
                "rule target " + tuple_name(rule.dst_type, target) +
                    " is outside the nodetype domain (add a 'when' guard?)",
                rule.loc);
          }
          const int from = src->task_of(t);
          const int to = dst->task_of(target);
          if (from == to) {
            throw LarcsError("rule produces a self-loop at " +
                                 tuple_name(rule.src_type, t),
                             rule.loc);
          }
          const long volume =
              rule.volume ? eval(rule.volume, rule_env) : 1;
          if (volume < 0) {
            throw LarcsError("negative message volume", rule.loc);
          }
          out.graph.add_comm_edge(phase, from, to, volume);
        }
        if (rule.forall_binder) {
          rule_env.unbind(*rule.forall_binder);
        }
      });
    }
  }

  // 4. Execution phases: cost evaluated per task with that task's
  //    nodetype dimension binders in scope.
  for (const auto& ep : program.exec_phases) {
    std::vector<std::int64_t> cost(
        static_cast<std::size_t>(out.graph.num_tasks()), 0);
    for (std::size_t nt_index = 0; nt_index < program.nodetypes.size();
         ++nt_index) {
      const auto& nt = program.nodetypes[nt_index];
      const auto& layout = out.layouts[nt_index];
      Env cost_env = env;
      for_each_tuple(layout.lo, layout.hi, [&](const std::vector<long>& t) {
        for (std::size_t d = 0; d < nt.dims.size(); ++d) {
          cost_env.bind(nt.dims[d].binder, t[d]);
        }
        const long c = eval(ep.cost, cost_env);
        if (c < 0) {
          throw LarcsError("negative execution cost", ep.loc);
        }
        cost[static_cast<std::size_t>(layout.task_of(t))] = c;
      });
    }
    out.graph.add_exec_phase(ep.name, std::move(cost));
  }

  // 5. Phase expression.
  if (program.phase_expr) {
    PhaseNames names;
    for (const auto& cp : program.comm_phases) {
      names.comm.push_back(cp.name);
    }
    for (const auto& ep : program.exec_phases) {
      names.exec.push_back(ep.name);
    }
    out.graph.set_phase_expr(
        lower_phase_expr(*program.phase_expr, names, env));
  }

  out.env = std::move(env);
  out.graph.validate();
  trace::counter("tasks", out.graph.num_tasks());
  trace::counter("comm_edges", out.graph.num_comm_edges());
  return out;
}

CompiledProgram compile_source(std::string_view source,
                               const std::map<std::string, long>& bindings,
                               const CompileOptions& options) {
  return compile(parse_program(source), bindings, options);
}

}  // namespace oregami::larcs
