// LaRCS pretty-printer: Program AST -> canonical source text. The
// output re-parses to a structurally identical program (round-trip
// property tested), which makes the AST a first-class interchange
// format for tools that transform LaRCS programs.
#pragma once

#include <string>

#include "oregami/larcs/ast.hpp"

namespace oregami::larcs {

/// Renders a complete program (fully parenthesised expressions,
/// canonical keyword spelling, one declaration per construct).
[[nodiscard]] std::string render_program(const Program& program);

}  // namespace oregami::larcs
