#include "oregami/larcs/token.hpp"

namespace oregami::larcs {

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::Integer: return "integer";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::KwAlgorithm: return "'algorithm'";
    case TokenKind::KwImport: return "'import'";
    case TokenKind::KwConst: return "'const'";
    case TokenKind::KwNodetype: return "'nodetype'";
    case TokenKind::KwNodesymmetric: return "'nodesymmetric'";
    case TokenKind::KwFamily: return "'family'";
    case TokenKind::KwComphase: return "'comphase'";
    case TokenKind::KwExphase: return "'exphase'";
    case TokenKind::KwPhases: return "'phases'";
    case TokenKind::KwForall: return "'forall'";
    case TokenKind::KwWhen: return "'when'";
    case TokenKind::KwVolume: return "'volume'";
    case TokenKind::KwCost: return "'cost'";
    case TokenKind::KwEps: return "'eps'";
    case TokenKind::KwMod: return "'mod'";
    case TokenKind::KwAnd: return "'and'";
    case TokenKind::KwOr: return "'or'";
    case TokenKind::KwNot: return "'not'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Colon: return "':'";
    case TokenKind::DotDot: return "'..'";
    case TokenKind::Arrow: return "'->'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Eq: return "'=='";
    case TokenKind::Ne: return "'!='";
    case TokenKind::Le: return "'<='";
    case TokenKind::Ge: return "'>='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::ParBar: return "'||'";
    case TokenKind::EndOfFile: return "end of file";
  }
  return "?";
}

bool starts_declaration(TokenKind kind) {
  switch (kind) {
    case TokenKind::KwImport:
    case TokenKind::KwConst:
    case TokenKind::KwNodetype:
    case TokenKind::KwFamily:
    case TokenKind::KwComphase:
    case TokenKind::KwExphase:
    case TokenKind::KwPhases:
      return true;
    default:
      return false;
  }
}

}  // namespace oregami::larcs
