#include "oregami/larcs/expr_eval.hpp"

#include <algorithm>
#include <cmath>

namespace oregami::larcs {

long Env::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw LarcsError("unknown variable '" + name + "'");
  }
  return it->second;
}

namespace {

long eval_call(const Expr& expr, const Env& env) {
  auto arity = [&expr](std::size_t n) {
    if (expr.args.size() != n) {
      throw LarcsError("call to '" + expr.name + "' expects " +
                           std::to_string(n) + " argument(s)",
                       expr.loc);
    }
  };
  if (expr.name == "pow") {
    arity(2);
    const long base = eval(*expr.args[0], env);
    const long exp = eval(*expr.args[1], env);
    if (exp < 0) {
      throw LarcsError("pow with negative exponent", expr.loc);
    }
    long result = 1;
    for (long k = 0; k < exp; ++k) {
      if (base != 0 && std::abs(result) > (1L << 62) / std::abs(base)) {
        throw LarcsError("pow overflows", expr.loc);
      }
      result *= base;
    }
    return result;
  }
  if (expr.name == "log2") {
    arity(1);
    const long x = eval(*expr.args[0], env);
    if (x <= 0) {
      throw LarcsError("log2 of a non-positive value", expr.loc);
    }
    long result = 0;
    long v = x;
    while (v > 1) {
      v /= 2;
      ++result;
    }
    return result;  // floor(log2(x))
  }
  if (expr.name == "min") {
    arity(2);
    return std::min(eval(*expr.args[0], env), eval(*expr.args[1], env));
  }
  if (expr.name == "max") {
    arity(2);
    return std::max(eval(*expr.args[0], env), eval(*expr.args[1], env));
  }
  if (expr.name == "abs") {
    arity(1);
    return std::abs(eval(*expr.args[0], env));
  }
  if (expr.name == "xor") {
    arity(2);
    const long a = eval(*expr.args[0], env);
    const long b = eval(*expr.args[1], env);
    if (a < 0 || b < 0) {
      throw LarcsError("xor requires non-negative arguments", expr.loc);
    }
    return a ^ b;
  }
  if (expr.name == "bit") {
    arity(2);
    const long x = eval(*expr.args[0], env);
    const long j = eval(*expr.args[1], env);
    if (x < 0 || j < 0 || j > 62) {
      throw LarcsError("bit requires x >= 0 and 0 <= j <= 62", expr.loc);
    }
    return (x >> j) & 1;
  }
  throw LarcsError("unknown function '" + expr.name + "'", expr.loc);
}

}  // namespace

long eval(const Expr& expr, const Env& env) {
  switch (expr.kind) {
    case Expr::Kind::IntLit:
      return expr.value;
    case Expr::Kind::Var:
      if (!env.has(expr.name)) {
        throw LarcsError("unknown variable '" + expr.name + "'", expr.loc);
      }
      return env.get(expr.name);
    case Expr::Kind::Unary: {
      if (expr.un_op == UnOp::Neg) {
        return -eval(*expr.args[0], env);
      }
      return eval(*expr.args[0], env) == 0 ? 1 : 0;
    }
    case Expr::Kind::Binary: {
      // Short-circuit booleans first.
      if (expr.bin_op == BinOp::And) {
        return (eval(*expr.args[0], env) != 0 &&
                eval(*expr.args[1], env) != 0)
                   ? 1
                   : 0;
      }
      if (expr.bin_op == BinOp::Or) {
        return (eval(*expr.args[0], env) != 0 ||
                eval(*expr.args[1], env) != 0)
                   ? 1
                   : 0;
      }
      const long a = eval(*expr.args[0], env);
      const long b = eval(*expr.args[1], env);
      switch (expr.bin_op) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div:
          if (b == 0) {
            throw LarcsError("division by zero", expr.loc);
          }
          return a / b;
        case BinOp::Mod: {
          if (b == 0) {
            throw LarcsError("mod by zero", expr.loc);
          }
          const long m = a % b;
          return m < 0 ? m + std::abs(b) : m;
        }
        case BinOp::Eq: return a == b ? 1 : 0;
        case BinOp::Ne: return a != b ? 1 : 0;
        case BinOp::Lt: return a < b ? 1 : 0;
        case BinOp::Le: return a <= b ? 1 : 0;
        case BinOp::Gt: return a > b ? 1 : 0;
        case BinOp::Ge: return a >= b ? 1 : 0;
        case BinOp::And:
        case BinOp::Or:
          break;  // handled above
      }
      return 0;
    }
    case Expr::Kind::Call:
      return eval_call(expr, env);
  }
  return 0;
}

long eval(const ExprPtr& expr, const Env& env) {
  OREGAMI_ASSERT(expr != nullptr, "evaluating a null expression");
  return eval(*expr, env);
}

bool eval_bool(const ExprPtr& expr, const Env& env) {
  return eval(expr, env) != 0;
}

}  // namespace oregami::larcs
