#include "oregami/larcs/programs.hpp"

#include "oregami/support/error.hpp"

namespace oregami::larcs::programs {

std::string nbody() {
  return R"(
-- Fig 2b: Seitz's n-body algorithm on a chordal ring.
algorithm nbody(n, s);
import m;

nodetype body[i: 0 .. n-1] nodesymmetric;

comphase ring {
  body(i) -> body((i + 1) mod n) volume m;
}
comphase chordal {
  body(i) -> body((i + (n + 1) / 2) mod n) volume m;
}

exphase compute1 cost n;
exphase compute2 cost n;

phases ((ring; compute1)^((n + 1) / 2); chordal; compute2)^s;
)";
}

std::string ring_pipeline() {
  return R"(
algorithm ring_pipeline(n, stages);
family ring;

nodetype stage[i: 0 .. n-1] nodesymmetric;

comphase right {
  stage(i) -> stage((i + 1) mod n) volume 1;
}

exphase work cost 10;

phases (work; right)^stages;
)";
}

std::string jacobi() {
  return R"(
-- Jacobi iterative method for the Laplace equation on a rectangle.
algorithm jacobi(n, iters);
family mesh;

nodetype cell[i: 0 .. n-1, j: 0 .. n-1];

comphase exchange {
  cell(i, j) -> cell(i + 1, j) when i < n - 1 volume 1;
  cell(i, j) -> cell(i - 1, j) when i > 0     volume 1;
  cell(i, j) -> cell(i, j + 1) when j < n - 1 volume 1;
  cell(i, j) -> cell(i, j - 1) when j > 0     volume 1;
}

exphase relax cost 5;

phases (relax; exchange)^iters;
)";
}

std::string sor() {
  return R"(
-- Red-black successive over-relaxation.
algorithm sor(n, iters);

nodetype cell[i: 0 .. n-1, j: 0 .. n-1];

comphase red_to_black {
  cell(i, j) -> cell(i + 1, j) when (i + j) mod 2 == 0 and i < n - 1 volume 1;
  cell(i, j) -> cell(i - 1, j) when (i + j) mod 2 == 0 and i > 0     volume 1;
  cell(i, j) -> cell(i, j + 1) when (i + j) mod 2 == 0 and j < n - 1 volume 1;
  cell(i, j) -> cell(i, j - 1) when (i + j) mod 2 == 0 and j > 0     volume 1;
}
comphase black_to_red {
  cell(i, j) -> cell(i + 1, j) when (i + j) mod 2 == 1 and i < n - 1 volume 1;
  cell(i, j) -> cell(i - 1, j) when (i + j) mod 2 == 1 and i > 0     volume 1;
  cell(i, j) -> cell(i, j + 1) when (i + j) mod 2 == 1 and j < n - 1 volume 1;
  cell(i, j) -> cell(i, j - 1) when (i + j) mod 2 == 1 and j > 0     volume 1;
}

exphase update_red   cost 3;
exphase update_black cost 3;

phases (update_red; red_to_black; update_black; black_to_red)^iters;
)";
}

std::string binomial_dnc() {
  return R"(
-- Divide and conquer on the binomial tree B_k (see [LRG+89]).
algorithm binomial_dnc(k);
family binomial_tree;

nodetype node[i: 0 .. pow(2, k) - 1];

comphase scatter {
  node(i) -> node(i + pow(2, j))
    forall j: 0 .. k - 1
    when i mod pow(2, j + 1) == 0
    volume 1;
}
comphase gather {
  node(i) -> node(i - pow(2, j))
    forall j: 0 .. k - 1
    when i mod pow(2, j + 1) == pow(2, j)
    volume 1;
}

exphase solve cost 8;

phases scatter; solve; gather;
)";
}

std::string matmul_systolic() {
  return R"(
-- Matrix multiplication as a uniform recurrence over an n^3 lattice:
-- a-values flow along j, b-values along i, c-accumulations along k.
algorithm matmul(n);

nodetype cell[i: 0 .. n-1, j: 0 .. n-1, k: 0 .. n-1];

comphase flow {
  cell(i, j, k) -> cell(i + 1, j, k) when i < n - 1 volume 1;
  cell(i, j, k) -> cell(i, j + 1, k) when j < n - 1 volume 1;
  cell(i, j, k) -> cell(i, j, k + 1) when k < n - 1 volume 1;
}

exphase mac cost 1;

phases (mac; flow)^1;
)";
}

std::string cbt_reduce() {
  return R"(
-- Reduction over a complete binary tree of 2^h - 1 tasks.
algorithm cbt_reduce(h);
family complete_binary_tree;

nodetype node[i: 0 .. pow(2, h) - 2];

comphase up {
  node(i) -> node((i - 1) / 2) when i > 0 volume 1;
}

exphase combine cost 2;

phases (combine; up)^h;
)";
}

std::string torus_stencil() {
  return R"(
-- Periodic 4-neighbour stencil; node symmetric (Cayley graph of
-- Z_r x Z_c).
algorithm torus_stencil(r, c, iters);

nodetype cell[i: 0 .. r-1, j: 0 .. c-1] nodesymmetric;

comphase south { cell(i, j) -> cell((i + 1) mod r, j) volume 1; }
comphase north { cell(i, j) -> cell((i - 1 + r) mod r, j) volume 1; }
comphase east  { cell(i, j) -> cell(i, (j + 1) mod c) volume 1; }
comphase west  { cell(i, j) -> cell(i, (j - 1 + c) mod c) volume 1; }

exphase relax cost 4;

phases (relax; south; north; east; west)^iters;
)";
}

std::string hypercube_exchange() {
  return R"(
-- Full-dimension exchange on a d-cube; both directions of each
-- dimension in one phase.
algorithm hypercube_exchange(d, iters);
family hypercube;

nodetype node[i: 0 .. pow(2, d) - 1] nodesymmetric;

comphase exchange {
  node(i) -> node(i + pow(2, j))
    forall j: 0 .. d - 1
    when (i / pow(2, j)) mod 2 == 0
    volume 1;
  node(i) -> node(i - pow(2, j))
    forall j: 0 .. d - 1
    when (i / pow(2, j)) mod 2 == 1
    volume 1;
}

exphase combine cost 1;

phases (exchange; combine)^iters;
)";
}

std::string fft(int log_n) {
  OREGAMI_ASSERT(log_n >= 1 && log_n <= 20, "fft: log_n out of range");
  std::string src = "-- Generated " + std::to_string(log_n) +
                    "-stage FFT butterfly.\n";
  src += "algorithm fft(n);\n";
  src += "nodetype node[i: 0 .. n - 1];\n";
  for (int j = 0; j < log_n; ++j) {
    const std::string stride = std::to_string(1L << j);
    src += "comphase stage" + std::to_string(j) + " {\n";
    src += "  node(i) -> node(i + " + stride + ") when (i / " + stride +
           ") mod 2 == 0 volume 1;\n";
    src += "  node(i) -> node(i - " + stride + ") when (i / " + stride +
           ") mod 2 == 1 volume 1;\n";
    src += "}\n";
  }
  src += "exphase twiddle cost 4;\n";
  src += "phases ";
  for (int j = 0; j < log_n; ++j) {
    if (j != 0) {
      src += "; ";
    }
    src += "stage" + std::to_string(j) + "; twiddle";
  }
  src += ";\n";
  return src;
}

std::string fft_parametric() {
  return R"(
-- FFT butterfly with binary labeling: every stage's exchange collapses
-- into one phase via xor. The source is independent of the problem
-- size (d = log2 n).
algorithm fft_parametric(d);

nodetype node[i: 0 .. pow(2, d) - 1] nodesymmetric;

comphase butterfly {
  node(i) -> node(xor(i, pow(2, j))) forall j: 0 .. d - 1 volume 1;
}

exphase twiddle cost d;

phases (butterfly; twiddle)^d;
)";
}

std::string broadcast_vote(int n) {
  OREGAMI_ASSERT(n >= 2 && (n & (n - 1)) == 0,
                 "broadcast_vote: n must be a power of two");
  int log_n = 0;
  while ((1 << log_n) < n) {
    ++log_n;
  }
  std::string src =
      "-- Generated perfect-broadcast voting (Fig 4 for n = 8): comm "
      "phase j\n-- sends i -> (i + 2^j) mod n.\n";
  src += "algorithm broadcast_vote(n);\n";
  src += "nodetype task[i: 0 .. n - 1] nodesymmetric;\n";
  for (int j = 0; j < log_n; ++j) {
    src += "comphase comm" + std::to_string(j + 1) + " {\n";
    src += "  task(i) -> task((i + " + std::to_string(1 << j) +
           ") mod n) volume 1;\n";
    src += "}\n";
  }
  src += "exphase tally cost 1;\n";
  src += "phases ";
  for (int j = 0; j < log_n; ++j) {
    if (j != 0) {
      src += "; ";
    }
    src += "comm" + std::to_string(j + 1) + "; tally";
  }
  src += ";\n";
  return src;
}

std::vector<CatalogEntry> catalog() {
  return {
      {"nbody", nbody(), {{"n", 15}, {"s", 4}, {"m", 8}}},
      {"ring_pipeline", ring_pipeline(), {{"n", 16}, {"stages", 8}}},
      {"jacobi", jacobi(), {{"n", 8}, {"iters", 10}}},
      {"sor", sor(), {{"n", 8}, {"iters", 10}}},
      {"binomial_dnc", binomial_dnc(), {{"k", 4}}},
      {"matmul", matmul_systolic(), {{"n", 4}}},
      {"cbt_reduce", cbt_reduce(), {{"h", 4}}},
      {"torus_stencil", torus_stencil(), {{"r", 4}, {"c", 4}, {"iters", 5}}},
      {"hypercube_exchange", hypercube_exchange(),
       {{"d", 4}, {"iters", 3}}},
      {"fft_parametric", fft_parametric(), {{"d", 4}}},
  };
}

}  // namespace oregami::larcs::programs
