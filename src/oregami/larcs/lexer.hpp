// LaRCS lexer: source text -> token vector. Comments run from `--` or
// `//` to end of line. Identifiers are [A-Za-z_][A-Za-z0-9_]*; keywords
// are reserved.
#pragma once

#include <string_view>
#include <vector>

#include "oregami/larcs/token.hpp"

namespace oregami::larcs {

/// Tokenises `source`; the result always ends with an EndOfFile token.
/// Throws LarcsError (with location) on an unexpected character.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace oregami::larcs
