// Built-in corpus of LaRCS programs. The paper reports LaRCS
// descriptions for the n-body problem (Fig 2b), matrix multiplication,
// FFT, divide and conquer on binomial trees, Jacobi iteration, SOR,
// perfect-broadcast distributed voting, and others; this module
// provides concrete sources for that corpus in our LaRCS grammar.
//
// Fixed-parameter families (FFT stages, broadcast rounds) are emitted
// by generators, demonstrating that LaRCS sources can themselves be
// produced parametrically.
#pragma once

#include <string>
#include <vector>

namespace oregami::larcs::programs {

/// Fig 2b: the n-body chordal ring. Parameters: n (bodies, use odd n
/// for the half-ring chord), s (outer iterations). Imports: m (message
/// volume). Phase expression ((ring; compute1)^((n+1)/2); chordal;
/// compute2)^s, exactly as the paper gives it.
[[nodiscard]] std::string nbody();

/// A unidirectional ring pipeline; declares `family ring`.
[[nodiscard]] std::string ring_pipeline();

/// Jacobi iteration on an n x n grid (4-point stencil), `family mesh`.
/// Parameters: n, iters.
[[nodiscard]] std::string jacobi();

/// Red-black successive over-relaxation on an n x n grid.
/// Parameters: n, iters.
[[nodiscard]] std::string sor();

/// Divide-and-conquer on the binomial tree B_k (2^k tasks):
/// scatter down, compute, gather up. Parameter: k.
[[nodiscard]] std::string binomial_dnc();

/// Matrix multiplication as a 3-D uniform recurrence (the §4.2.1
/// systolic class): dependences (1,0,0), (0,1,0), (0,0,1).
/// Parameter: n.
[[nodiscard]] std::string matmul_systolic();

/// Reduction on a complete binary tree with 2^h - 1 tasks.
/// Parameter: h.
[[nodiscard]] std::string cbt_reduce();

/// 5-point periodic stencil on an r x c torus (node-symmetric; its
/// communication functions generate Z_r x Z_c). Parameters: r, c,
/// iters.
[[nodiscard]] std::string torus_stencil();

/// All-dimension exchange on a d-dimensional hypercube (one phase with
/// both directions of every dimension). Parameters: d, iters.
[[nodiscard]] std::string hypercube_exchange();

/// Generated: log2(n)-stage FFT butterfly over `1 << log_n` tasks, one
/// comm phase per stage.
[[nodiscard]] std::string fft(int log_n);

/// Fully parametric FFT using the binary-labeling builtins: a single
/// `butterfly` phase with `forall j` XOR rules (the per-stage structure
/// collapses into one phase, traded for a size-independent source).
[[nodiscard]] std::string fft_parametric();

/// Generated: the perfect-broadcast voting algorithm of Fig 4 on
/// n = 2^k tasks: comm phase j sends i -> (i + 2^j) mod n. For n = 8
/// this produces exactly the paper's comm1/comm2/comm3.
[[nodiscard]] std::string broadcast_vote(int n);

/// Named catalogue of the fixed sources (generators excluded), for
/// tests and tools that sweep the corpus.
struct CatalogEntry {
  std::string name;
  std::string source;
  /// A representative set of bindings that compiles.
  std::vector<std::pair<std::string, long>> example_bindings;
};
[[nodiscard]] std::vector<CatalogEntry> catalog();

}  // namespace oregami::larcs::programs
