// Evaluation of LaRCS expressions under a variable environment
// (algorithm parameters, imported variables, consts, and rule binders).
#pragma once

#include <map>
#include <string>

#include "oregami/larcs/ast.hpp"

namespace oregami::larcs {

/// Variable bindings, name -> integer value. Booleans are 0/1.
class Env {
 public:
  Env() = default;

  void bind(const std::string& name, long value) { values_[name] = value; }
  void unbind(const std::string& name) { values_.erase(name); }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) > 0;
  }
  [[nodiscard]] long get(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, long>& values() const {
    return values_;
  }

 private:
  std::map<std::string, long> values_;
};

/// Evaluates `expr` in `env`. Semantics:
///   / truncates toward zero; x mod y is mathematical (result in
///   [0, |y|)); division/mod by zero and unknown variables throw
///   LarcsError; pow/log2/min/max/abs are built-in calls; comparisons
///   and and/or/not yield 0/1 (short-circuit evaluation).
[[nodiscard]] long eval(const Expr& expr, const Env& env);
[[nodiscard]] long eval(const ExprPtr& expr, const Env& env);

/// True when `expr` evaluates to nonzero (guard convenience).
[[nodiscard]] bool eval_bool(const ExprPtr& expr, const Env& env);

}  // namespace oregami::larcs
