// Abstract syntax of a LaRCS program (paper §3, Fig 2b).
//
// Concrete grammar implemented by the parser:
//
//   program   := 'algorithm' NAME '(' [param,*] ')' ';' decl*
//   decl      := 'import' NAME (',' NAME)* ';'
//              | 'const' NAME '=' expr ';'
//              | 'nodetype' NAME '[' dim (',' dim)* ']' ['nodesymmetric'] ';'
//              | 'family' NAME ';'
//              | 'comphase' NAME '{' rule* '}'
//              | 'exphase' NAME 'cost' expr ';'
//              | 'phases' phase-expr ';'
//   dim       := BINDER ':' expr '..' expr
//   rule      := NAME '(' BINDER,* ')' '->' NAME '(' expr,* ')'
//                ['forall' BINDER ':' expr '..' expr]
//                ['when' expr] ['volume' expr] ';'
//   phase-expr:= seq of par of rep of atom; rep = atom '^' primary;
//                atom = NAME | 'eps' | '(' phase-expr ')'
//
// Expressions: integer arithmetic (+ - * / mod %), unary minus,
// comparisons, and/or/not, and calls pow/log2/min/max/abs/xor/bit
// (binary labeling support). Division is integer (truncating toward
// zero), mod is mathematical (result >= 0).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oregami/support/error.hpp"

namespace oregami::larcs {

enum class BinOp { Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
enum class UnOp { Neg, Not };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node (shared between AST copies).
struct Expr {
  enum class Kind { IntLit, Var, Unary, Binary, Call };

  Kind kind = Kind::IntLit;
  long value = 0;            ///< IntLit
  std::string name;          ///< Var / Call
  UnOp un_op = UnOp::Neg;    ///< Unary
  BinOp bin_op = BinOp::Add; ///< Binary
  std::vector<ExprPtr> args; ///< Unary(1) / Binary(2) / Call(n)
  SourceLoc loc;

  static ExprPtr int_lit(long v, SourceLoc loc = {});
  static ExprPtr var(std::string name, SourceLoc loc = {});
  static ExprPtr unary(UnOp op, ExprPtr operand, SourceLoc loc = {});
  static ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs,
                        SourceLoc loc = {});
  static ExprPtr call(std::string name, std::vector<ExprPtr> args,
                      SourceLoc loc = {});

  /// Pretty-prints with minimal parentheses (tests use round-trips).
  [[nodiscard]] std::string to_string() const;
};

/// One dimension of a node label domain: binder : lo .. hi (inclusive).
struct DimDecl {
  std::string binder;
  ExprPtr lo;
  ExprPtr hi;
};

struct NodeTypeDecl {
  std::string name;
  std::vector<DimDecl> dims;
  bool node_symmetric = false;
  SourceLoc loc;
};

/// One edge rule inside a comphase.
struct CommRule {
  std::string src_type;
  std::vector<std::string> pattern;  ///< binder per source dimension
  std::string dst_type;
  std::vector<ExprPtr> target;       ///< expression per dest dimension
  std::optional<std::string> forall_binder;
  ExprPtr forall_lo;  ///< null unless forall present
  ExprPtr forall_hi;
  ExprPtr guard;      ///< null = unconditional
  ExprPtr volume;     ///< null = 1
  SourceLoc loc;
};

struct CommPhaseDecl {
  std::string name;
  std::vector<CommRule> rules;
  SourceLoc loc;
};

struct ExecPhaseDecl {
  std::string name;
  ExprPtr cost;  ///< may reference nodetype dimension binders
  SourceLoc loc;
};

/// Phase-expression AST (counts still unevaluated).
struct PhaseExprNode {
  enum class Kind { Idle, Ref, Seq, Par, Repeat };

  Kind kind = Kind::Idle;
  std::string ref_name;                 ///< Ref: comm or exec phase name
  ExprPtr count;                        ///< Repeat
  std::vector<PhaseExprNode> children;  ///< Seq/Par/Repeat
  SourceLoc loc;

  [[nodiscard]] std::string to_string() const;
};

struct Program {
  std::string name;
  /// Location of the `algorithm` header keyword; the anchor for
  /// program-level diagnostics that have no finer position (missing
  /// bindings, "declares no nodetype", ...).
  SourceLoc loc;
  std::vector<std::string> params;
  std::vector<std::string> imports;
  std::vector<std::pair<std::string, ExprPtr>> consts;
  std::vector<NodeTypeDecl> nodetypes;
  std::optional<std::string> family_hint;
  std::vector<CommPhaseDecl> comm_phases;
  std::vector<ExecPhaseDecl> exec_phases;
  std::optional<PhaseExprNode> phase_expr;

  [[nodiscard]] const NodeTypeDecl* find_nodetype(
      const std::string& type_name) const;
};

}  // namespace oregami::larcs
