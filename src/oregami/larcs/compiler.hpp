// The LaRCS compiler: AST + parameter bindings -> concrete TaskGraph.
//
// The original OREGAMI prototype compiled LaRCS into Scheme functions
// consumed by MAPPER and METRICS; here we materialise the same
// information directly as the TaskGraph data structure (see DESIGN.md,
// substitution table).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "oregami/core/task_graph.hpp"
#include "oregami/larcs/ast.hpp"
#include "oregami/larcs/expr_eval.hpp"

namespace oregami::larcs {

struct CompileOptions {
  /// Upper bound on the number of tasks a program may expand to
  /// (guards against runaway domains from bad parameter values).
  long max_tasks = 1'000'000;
};

/// Evaluated layout of one nodetype's label domain: rectangular box
/// [lo[d], hi[d]] per dimension, tasks numbered row-major (last
/// dimension fastest) starting at `base`.
struct NodeTypeLayout {
  std::string name;
  std::vector<long> lo;
  std::vector<long> hi;
  int base = 0;
  long count = 0;

  [[nodiscard]] bool contains(const std::vector<long>& tuple) const;

  /// Task id of a label tuple (must be in range).
  [[nodiscard]] int task_of(const std::vector<long>& tuple) const;
};

/// Compiler output: the task graph plus the layout/meta information the
/// MAPPER strategies use (family hint, evaluated environment, domains).
struct CompiledProgram {
  TaskGraph graph;
  std::optional<std::string> family_hint;
  std::vector<NodeTypeLayout> layouts;
  Env env;  ///< params + imports + consts

  [[nodiscard]] const NodeTypeLayout* find_layout(
      const std::string& nodetype) const;
};

/// Compiles `program` with `bindings` supplying every algorithm
/// parameter and imported variable. Throws LarcsError on missing or
/// inconsistent bindings, empty domains, out-of-range rule targets,
/// self-loop edges, or task-count overflow.
[[nodiscard]] CompiledProgram compile(
    const Program& program, const std::map<std::string, long>& bindings,
    const CompileOptions& options = {});

/// Convenience: parse + compile.
[[nodiscard]] CompiledProgram compile_source(
    std::string_view source, const std::map<std::string, long>& bindings,
    const CompileOptions& options = {});

}  // namespace oregami::larcs
