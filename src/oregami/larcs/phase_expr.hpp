// Evaluation of a LaRCS phase-expression AST into the concrete
// core::PhaseTree used by TaskGraph and METRICS: repetition counts are
// evaluated under the program environment and phase names are resolved
// to comm/exec phase indices.
#pragma once

#include <string>
#include <vector>

#include "oregami/core/task_graph.hpp"
#include "oregami/larcs/ast.hpp"
#include "oregami/larcs/expr_eval.hpp"

namespace oregami::larcs {

/// Name tables for phase resolution (declaration order indices).
struct PhaseNames {
  std::vector<std::string> comm;
  std::vector<std::string> exec;
};

/// Lowers `node` to a PhaseTree. A Ref resolves to a comm phase first,
/// then an exec phase; unknown names throw LarcsError (the parser
/// should have caught them already). Repeat counts must evaluate
/// non-negative.
[[nodiscard]] PhaseTree lower_phase_expr(const PhaseExprNode& node,
                                         const PhaseNames& names,
                                         const Env& env);

}  // namespace oregami::larcs
