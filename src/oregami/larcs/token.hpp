// Token stream for the LaRCS language (paper §3).
//
// LaRCS (Language for Regular Communication Structures) describes the
// static communication topology and dynamic phase behaviour of a
// parallel computation. The paper presents LaRCS only through examples;
// this reproduction fixes a concrete grammar covering every feature the
// paper names: parameterised algorithm header, imported variables,
// multi-dimensional node label domains, `nodesymmetric` tags, nameable
// family hints, comm-phase edge rules with forall/when/volume clauses,
// exec phases with cost expressions, and phase expressions built from
// `;` (sequence), `^` (repetition), `||` (parallelism) and `eps`.
#pragma once

#include <string>
#include <vector>

#include "oregami/support/error.hpp"

namespace oregami::larcs {

enum class TokenKind {
  // literals / identifiers
  Integer,
  Identifier,
  // keywords
  KwAlgorithm,
  KwImport,
  KwConst,
  KwNodetype,
  KwNodesymmetric,
  KwFamily,
  KwComphase,
  KwExphase,
  KwPhases,
  KwForall,
  KwWhen,
  KwVolume,
  KwCost,
  KwEps,
  KwMod,
  KwAnd,
  KwOr,
  KwNot,
  // punctuation / operators
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Semicolon,
  Comma,
  Colon,
  DotDot,
  Arrow,     // ->
  Assign,    // =
  Eq,        // ==
  Ne,        // !=
  Le,        // <=
  Ge,        // >=
  Lt,        // <
  Gt,        // >
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Caret,     // ^
  ParBar,    // ||
  EndOfFile,
};

[[nodiscard]] std::string to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;  ///< raw lexeme (identifier name / digits)
  long value = 0;    ///< for Integer
  SourceLoc loc;
};

/// True when `kind` is one of the declaration-starting keywords; the
/// phase-expression parser uses this to find the end of a `phases`
/// declaration.
[[nodiscard]] bool starts_declaration(TokenKind kind);

}  // namespace oregami::larcs
