// Recursive-descent parser for LaRCS. See ast.hpp for the grammar.
#pragma once

#include <string_view>

#include "oregami/larcs/ast.hpp"

namespace oregami::larcs {

/// Parses a complete LaRCS program; throws LarcsError with a source
/// location on malformed input. Also performs name resolution checks:
/// duplicate declarations, rules referencing unknown nodetypes,
/// dimension-arity mismatches, and phase expressions referencing
/// unknown phases.
[[nodiscard]] Program parse_program(std::string_view source);

/// Parses a standalone expression (exposed for tests and tools).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace oregami::larcs
