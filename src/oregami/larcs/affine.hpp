// Syntactic affine-ness checks on LaRCS programs (paper §4.2.1).
//
// To dispatch a computation to the systolic-array mapping path, OREGAMI
// performs constant-time compiler tests on the LaRCS program:
//   1. node labels are integer tuples        (true by construction here),
//   2. the label set is a convex polytope    (our domains are boxes with
//      parameter-dependent bounds, a polytope),
//   3. every communication function is affine in the node label,
//   4. (handled by the mapper) the target is a systolic array / mesh.
// This module implements the affine extraction and classifies each rule
// as uniform (constant dependence vector), affine, or neither.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "oregami/larcs/ast.hpp"
#include "oregami/larcs/expr_eval.hpp"

namespace oregami::larcs {

/// An affine form  constant + sum_d coeffs[d] * binder_d  with integer
/// coefficients (parameters folded to their bound values).
struct AffineForm {
  std::vector<long> coeffs;
  long constant = 0;

  [[nodiscard]] bool is_constant() const;
};

/// Extracts `expr` as an affine form over `binders` (evaluating
/// parameter references via `env`). Returns nullopt when the expression
/// is not affine (products of binders, div/mod on binders, ...).
[[nodiscard]] std::optional<AffineForm> extract_affine(
    const ExprPtr& expr, const std::vector<std::string>& binders,
    const Env& env);

/// Classification of one comm rule.
enum class RuleClass {
  Uniform,    ///< target = source + constant vector (no forall binder)
  Affine,     ///< target affine in the source label but not uniform
  NonAffine,  ///< fails the affine test
};

struct RuleAnalysis {
  std::string phase;
  RuleClass rule_class = RuleClass::NonAffine;
  /// For Uniform rules: the dependence vector target - source.
  std::vector<long> dependence;
};

/// Whole-program analysis for the systolic dispatch test.
struct AffineAnalysis {
  bool single_nodetype = false;
  bool domain_is_polytope = false;  ///< box bounds evaluate under env
  bool all_affine = false;
  bool all_uniform = false;
  std::vector<RuleAnalysis> rules;

  /// Distinct dependence vectors over all uniform rules.
  [[nodiscard]] std::vector<std::vector<long>> dependence_vectors() const;

  /// The full §4.2.1 dispatch condition (minus the target-architecture
  /// check, which the mapper owns): systolic synthesis applies.
  [[nodiscard]] bool systolic_applicable() const {
    return single_nodetype && domain_is_polytope && all_uniform;
  }
};

/// Runs the analysis; `env` must bind parameters/imports/consts (use
/// CompiledProgram::env or construct one).
[[nodiscard]] AffineAnalysis analyze_affine(const Program& program,
                                            const Env& env);

}  // namespace oregami::larcs
