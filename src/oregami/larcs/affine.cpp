#include "oregami/larcs/affine.hpp"

#include <algorithm>
#include <set>

namespace oregami::larcs {

bool AffineForm::is_constant() const {
  return std::all_of(coeffs.begin(), coeffs.end(),
                     [](long c) { return c == 0; });
}

namespace {

std::optional<AffineForm> extract(const Expr& expr,
                                  const std::vector<std::string>& binders,
                                  const Env& env) {
  const std::size_t n = binders.size();
  auto constant = [n](long value) {
    AffineForm f;
    f.coeffs.assign(n, 0);
    f.constant = value;
    return f;
  };

  switch (expr.kind) {
    case Expr::Kind::IntLit:
      return constant(expr.value);
    case Expr::Kind::Var: {
      const auto it = std::find(binders.begin(), binders.end(), expr.name);
      if (it != binders.end()) {
        AffineForm f;
        f.coeffs.assign(n, 0);
        f.coeffs[static_cast<std::size_t>(it - binders.begin())] = 1;
        return f;
      }
      if (env.has(expr.name)) {
        return constant(env.get(expr.name));
      }
      return std::nullopt;
    }
    case Expr::Kind::Unary: {
      if (expr.un_op != UnOp::Neg) {
        return std::nullopt;
      }
      auto f = extract(*expr.args[0], binders, env);
      if (!f) {
        return std::nullopt;
      }
      for (auto& c : f->coeffs) {
        c = -c;
      }
      f->constant = -f->constant;
      return f;
    }
    case Expr::Kind::Binary: {
      auto lhs = extract(*expr.args[0], binders, env);
      auto rhs = extract(*expr.args[1], binders, env);
      if (!lhs || !rhs) {
        return std::nullopt;
      }
      switch (expr.bin_op) {
        case BinOp::Add:
        case BinOp::Sub: {
          const long sign = expr.bin_op == BinOp::Add ? 1 : -1;
          for (std::size_t d = 0; d < n; ++d) {
            lhs->coeffs[d] += sign * rhs->coeffs[d];
          }
          lhs->constant += sign * rhs->constant;
          return lhs;
        }
        case BinOp::Mul: {
          if (rhs->is_constant()) {
            for (auto& c : lhs->coeffs) {
              c *= rhs->constant;
            }
            lhs->constant *= rhs->constant;
            return lhs;
          }
          if (lhs->is_constant()) {
            for (auto& c : rhs->coeffs) {
              c *= lhs->constant;
            }
            rhs->constant *= lhs->constant;
            return rhs;
          }
          return std::nullopt;
        }
        default:
          // Division, mod, comparisons, booleans: affine only when the
          // whole subexpression is binder-free, in which case it folds
          // to a constant.
          if (lhs->is_constant() && rhs->is_constant()) {
            Env closed = env;
            try {
              return constant(eval(expr, closed));
            } catch (const LarcsError&) {
              return std::nullopt;
            }
          }
          return std::nullopt;
      }
    }
    case Expr::Kind::Call: {
      // Calls fold only when binder-free.
      for (const auto& arg : expr.args) {
        const auto f = extract(*arg, binders, env);
        if (!f || !f->is_constant()) {
          return std::nullopt;
        }
      }
      try {
        return constant(eval(expr, env));
      } catch (const LarcsError&) {
        return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<AffineForm> extract_affine(
    const ExprPtr& expr, const std::vector<std::string>& binders,
    const Env& env) {
  OREGAMI_ASSERT(expr != nullptr, "extract_affine on null expression");
  return extract(*expr, binders, env);
}

std::vector<std::vector<long>> AffineAnalysis::dependence_vectors() const {
  std::set<std::vector<long>> distinct;
  for (const auto& rule : rules) {
    if (rule.rule_class == RuleClass::Uniform) {
      distinct.insert(rule.dependence);
    }
  }
  return {distinct.begin(), distinct.end()};
}

AffineAnalysis analyze_affine(const Program& program, const Env& env) {
  AffineAnalysis out;
  out.single_nodetype = program.nodetypes.size() == 1;

  // Box bounds: a polytope when every lo/hi evaluates under env (bounds
  // depend only on parameters, never on other binders).
  out.domain_is_polytope = true;
  for (const auto& nt : program.nodetypes) {
    for (const auto& dim : nt.dims) {
      try {
        (void)eval(dim.lo, env);
        (void)eval(dim.hi, env);
      } catch (const LarcsError&) {
        out.domain_is_polytope = false;
      }
    }
  }

  out.all_affine = true;
  out.all_uniform = true;
  for (const auto& cp : program.comm_phases) {
    for (const auto& rule : cp.rules) {
      RuleAnalysis analysis;
      analysis.phase = cp.name;

      std::vector<std::string> binders = rule.pattern;
      if (rule.forall_binder) {
        binders.push_back(*rule.forall_binder);
      }

      bool affine = rule.src_type == rule.dst_type;
      bool uniform = affine && !rule.forall_binder;
      std::vector<long> dependence;
      for (std::size_t d = 0; d < rule.target.size() && affine; ++d) {
        const auto form = extract_affine(rule.target[d], binders, env);
        if (!form) {
          affine = false;
          uniform = false;
          break;
        }
        // Uniform: coefficient matrix is the identity on the pattern
        // binders (component d depends on binder d with coefficient 1).
        for (std::size_t b = 0; b < rule.pattern.size(); ++b) {
          const long expected = (b == d) ? 1 : 0;
          if (form->coeffs[b] != expected) {
            uniform = false;
          }
        }
        dependence.push_back(form->constant);
      }

      if (!affine) {
        analysis.rule_class = RuleClass::NonAffine;
        out.all_affine = false;
        out.all_uniform = false;
      } else if (uniform) {
        analysis.rule_class = RuleClass::Uniform;
        analysis.dependence = std::move(dependence);
      } else {
        analysis.rule_class = RuleClass::Affine;
        out.all_uniform = false;
      }
      out.rules.push_back(std::move(analysis));
    }
  }
  return out;
}

}  // namespace oregami::larcs
