#include "oregami/larcs/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "oregami/support/trace.hpp"

namespace oregami::larcs {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"algorithm", TokenKind::KwAlgorithm},
      {"import", TokenKind::KwImport},
      {"const", TokenKind::KwConst},
      {"nodetype", TokenKind::KwNodetype},
      {"nodesymmetric", TokenKind::KwNodesymmetric},
      {"family", TokenKind::KwFamily},
      {"comphase", TokenKind::KwComphase},
      {"exphase", TokenKind::KwExphase},
      {"phases", TokenKind::KwPhases},
      {"forall", TokenKind::KwForall},
      {"when", TokenKind::KwWhen},
      {"volume", TokenKind::KwVolume},
      {"cost", TokenKind::KwCost},
      {"eps", TokenKind::KwEps},
      {"mod", TokenKind::KwMod},
      {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},
      {"not", TokenKind::KwNot},
  };
  return table;
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  const trace::Span span("lex");
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  int column = 1;

  auto advance = [&](std::size_t count = 1) {
    for (std::size_t k = 0; k < count && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto peek = [&](std::size_t offset = 0) -> char {
    return i + offset < source.size() ? source[i + offset] : '\0';
  };
  auto push = [&](TokenKind kind, std::string text, SourceLoc loc,
                  long value = 0) {
    tokens.push_back({kind, std::move(text), value, loc});
  };

  while (i < source.size()) {
    const char c = peek();
    const SourceLoc loc{line, column};

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if ((c == '-' && peek(1) == '-') || (c == '/' && peek(1) == '/')) {
      while (i < source.size() && peek() != '\n') {
        advance();
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        digits += peek();
        advance();
      }
      long value = 0;
      for (const char d : digits) {
        if (value > (9'223'372'036'854'775'807L - (d - '0')) / 10) {
          throw LarcsError("integer literal overflows", loc);
        }
        value = value * 10 + (d - '0');
      }
      push(TokenKind::Integer, std::move(digits), loc, value);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        word += peek();
        advance();
      }
      const auto it = keyword_table().find(word);
      if (it != keyword_table().end()) {
        push(it->second, std::move(word), loc);
      } else {
        push(TokenKind::Identifier, std::move(word), loc);
      }
      continue;
    }

    // Multi-character operators first.
    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('.', '.')) { advance(2); push(TokenKind::DotDot, "..", loc); continue; }
    if (two('-', '>')) { advance(2); push(TokenKind::Arrow, "->", loc); continue; }
    if (two('=', '=')) { advance(2); push(TokenKind::Eq, "==", loc); continue; }
    if (two('!', '=')) { advance(2); push(TokenKind::Ne, "!=", loc); continue; }
    if (two('<', '=')) { advance(2); push(TokenKind::Le, "<=", loc); continue; }
    if (two('>', '=')) { advance(2); push(TokenKind::Ge, ">=", loc); continue; }
    if (two('|', '|')) { advance(2); push(TokenKind::ParBar, "||", loc); continue; }

    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::LParen; break;
      case ')': kind = TokenKind::RParen; break;
      case '[': kind = TokenKind::LBracket; break;
      case ']': kind = TokenKind::RBracket; break;
      case '{': kind = TokenKind::LBrace; break;
      case '}': kind = TokenKind::RBrace; break;
      case ';': kind = TokenKind::Semicolon; break;
      case ',': kind = TokenKind::Comma; break;
      case ':': kind = TokenKind::Colon; break;
      case '=': kind = TokenKind::Assign; break;
      case '<': kind = TokenKind::Lt; break;
      case '>': kind = TokenKind::Gt; break;
      case '+': kind = TokenKind::Plus; break;
      case '-': kind = TokenKind::Minus; break;
      case '*': kind = TokenKind::Star; break;
      case '/': kind = TokenKind::Slash; break;
      case '%': kind = TokenKind::Percent; break;
      case '^': kind = TokenKind::Caret; break;
      default:
        throw LarcsError(std::string("unexpected character '") + c + "'",
                         loc);
    }
    advance();
    push(kind, std::string(1, c), loc);
  }

  tokens.push_back({TokenKind::EndOfFile, "", 0, {line, column}});
  trace::counter("tokens", static_cast<std::int64_t>(tokens.size()));
  return tokens;
}

}  // namespace oregami::larcs
