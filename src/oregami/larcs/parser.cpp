#include "oregami/larcs/parser.hpp"

#include <algorithm>
#include <set>

#include "oregami/larcs/lexer.hpp"
#include "oregami/support/trace.hpp"

namespace oregami::larcs {

ExprPtr Expr::int_lit(long v, SourceLoc loc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::IntLit;
  e->value = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::var(std::string name, SourceLoc loc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Var;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr Expr::unary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Unary;
  e->un_op = op;
  e->args.push_back(std::move(operand));
  e->loc = loc;
  return e;
}

ExprPtr Expr::binary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Binary;
  e->bin_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  e->loc = loc;
  return e;
}

ExprPtr Expr::call(std::string name, std::vector<ExprPtr> args,
                   SourceLoc loc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Call;
  e->name = std::move(name);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

namespace {

std::string bin_op_text(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "mod";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
  }
  return "?";
}

}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::IntLit:
      return std::to_string(value);
    case Kind::Var:
      return name;
    case Kind::Unary:
      return (un_op == UnOp::Neg ? "-" : "not ") +
             std::string("(") + args[0]->to_string() + ")";
    case Kind::Binary:
      return "(" + args[0]->to_string() + " " + bin_op_text(bin_op) + " " +
             args[1]->to_string() + ")";
    case Kind::Call: {
      std::string out = name + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += args[i]->to_string();
      }
      return out + ")";
    }
  }
  return "?";
}

std::string PhaseExprNode::to_string() const {
  switch (kind) {
    case Kind::Idle:
      return "eps";
    case Kind::Ref:
      return ref_name;
    case Kind::Seq: {
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i != 0) {
          out += "; ";
        }
        out += children[i].to_string();
      }
      return out + ")";
    }
    case Kind::Par: {
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i != 0) {
          out += " || ";
        }
        out += children[i].to_string();
      }
      return out + ")";
    }
    case Kind::Repeat:
      return children.front().to_string() + "^" + count->to_string();
  }
  return "?";
}

const NodeTypeDecl* Program::find_nodetype(
    const std::string& type_name) const {
  for (const auto& nt : nodetypes) {
    if (nt.name == type_name) {
      return &nt;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse() {
    Program program;
    program.loc = current().loc;
    expect(TokenKind::KwAlgorithm);
    program.name = expect(TokenKind::Identifier).text;
    expect(TokenKind::LParen);
    if (!at(TokenKind::RParen)) {
      program.params.push_back(expect(TokenKind::Identifier).text);
      while (accept(TokenKind::Comma)) {
        program.params.push_back(expect(TokenKind::Identifier).text);
      }
    }
    expect(TokenKind::RParen);
    expect(TokenKind::Semicolon);

    while (!at(TokenKind::EndOfFile)) {
      parse_declaration(program);
    }
    check_semantics(program);
    return program;
  }

  ExprPtr parse_standalone_expression() {
    ExprPtr e = parse_expr();
    expect(TokenKind::EndOfFile);
    return e;
  }

 private:
  const Token& current() const { return tokens_[pos_]; }
  const Token& peek(std::size_t offset = 1) const {
    return tokens_[std::min(pos_ + offset, tokens_.size() - 1)];
  }
  bool at(TokenKind kind) const { return current().kind == kind; }

  bool accept(TokenKind kind) {
    if (at(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Token expect(TokenKind kind) {
    if (!at(kind)) {
      throw LarcsError("expected " + larcs::to_string(kind) + " but found " +
                           larcs::to_string(current().kind),
                       current().loc);
    }
    return tokens_[pos_++];
  }

  void parse_declaration(Program& program) {
    switch (current().kind) {
      case TokenKind::KwImport: {
        ++pos_;
        program.imports.push_back(expect(TokenKind::Identifier).text);
        while (accept(TokenKind::Comma)) {
          program.imports.push_back(expect(TokenKind::Identifier).text);
        }
        expect(TokenKind::Semicolon);
        return;
      }
      case TokenKind::KwConst: {
        ++pos_;
        std::string name = expect(TokenKind::Identifier).text;
        expect(TokenKind::Assign);
        ExprPtr value = parse_expr();
        expect(TokenKind::Semicolon);
        program.consts.emplace_back(std::move(name), std::move(value));
        return;
      }
      case TokenKind::KwNodetype: {
        NodeTypeDecl decl;
        decl.loc = current().loc;
        ++pos_;
        decl.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LBracket);
        decl.dims.push_back(parse_dim());
        while (accept(TokenKind::Comma)) {
          decl.dims.push_back(parse_dim());
        }
        expect(TokenKind::RBracket);
        decl.node_symmetric = accept(TokenKind::KwNodesymmetric);
        expect(TokenKind::Semicolon);
        program.nodetypes.push_back(std::move(decl));
        return;
      }
      case TokenKind::KwFamily: {
        ++pos_;
        program.family_hint = expect(TokenKind::Identifier).text;
        expect(TokenKind::Semicolon);
        return;
      }
      case TokenKind::KwComphase: {
        CommPhaseDecl decl;
        decl.loc = current().loc;
        ++pos_;
        decl.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace)) {
          decl.rules.push_back(parse_rule());
        }
        program.comm_phases.push_back(std::move(decl));
        return;
      }
      case TokenKind::KwExphase: {
        ExecPhaseDecl decl;
        decl.loc = current().loc;
        ++pos_;
        decl.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::KwCost);
        decl.cost = parse_expr();
        expect(TokenKind::Semicolon);
        program.exec_phases.push_back(std::move(decl));
        return;
      }
      case TokenKind::KwPhases: {
        const SourceLoc loc = current().loc;
        ++pos_;
        if (program.phase_expr) {
          throw LarcsError("duplicate 'phases' declaration", loc);
        }
        program.phase_expr = parse_phase_expr();
        expect(TokenKind::Semicolon);
        return;
      }
      default:
        throw LarcsError("expected a declaration but found " +
                             larcs::to_string(current().kind),
                         current().loc);
    }
  }

  DimDecl parse_dim() {
    DimDecl dim;
    dim.binder = expect(TokenKind::Identifier).text;
    expect(TokenKind::Colon);
    dim.lo = parse_expr();
    expect(TokenKind::DotDot);
    dim.hi = parse_expr();
    return dim;
  }

  CommRule parse_rule() {
    CommRule rule;
    rule.loc = current().loc;
    rule.src_type = expect(TokenKind::Identifier).text;
    expect(TokenKind::LParen);
    rule.pattern.push_back(expect(TokenKind::Identifier).text);
    while (accept(TokenKind::Comma)) {
      rule.pattern.push_back(expect(TokenKind::Identifier).text);
    }
    expect(TokenKind::RParen);
    expect(TokenKind::Arrow);
    rule.dst_type = expect(TokenKind::Identifier).text;
    expect(TokenKind::LParen);
    rule.target.push_back(parse_expr());
    while (accept(TokenKind::Comma)) {
      rule.target.push_back(parse_expr());
    }
    expect(TokenKind::RParen);
    if (accept(TokenKind::KwForall)) {
      rule.forall_binder = expect(TokenKind::Identifier).text;
      expect(TokenKind::Colon);
      rule.forall_lo = parse_expr();
      expect(TokenKind::DotDot);
      rule.forall_hi = parse_expr();
    }
    if (accept(TokenKind::KwWhen)) {
      rule.guard = parse_expr();
    }
    if (accept(TokenKind::KwVolume)) {
      rule.volume = parse_expr();
    }
    expect(TokenKind::Semicolon);
    return rule;
  }

  // --- phase expressions -------------------------------------------------
  //
  // Sequence binds loosest; the list ends when after a ';' the next
  // token cannot start a phase expression (declaration keyword, EOF,
  // or a closing parenthesis that belongs to the surrounding level).

  PhaseExprNode parse_phase_expr() {
    PhaseExprNode first = parse_phase_par();
    if (!at(TokenKind::Semicolon) || !phase_follows_semicolon()) {
      return first;
    }
    PhaseExprNode seq;
    seq.kind = PhaseExprNode::Kind::Seq;
    seq.loc = first.loc;
    seq.children.push_back(std::move(first));
    while (at(TokenKind::Semicolon) && phase_follows_semicolon()) {
      expect(TokenKind::Semicolon);
      seq.children.push_back(parse_phase_par());
    }
    return seq;
  }

  /// After the current ';', does a phase expression continue?
  bool phase_follows_semicolon() const {
    const TokenKind next = peek().kind;
    return next == TokenKind::Identifier || next == TokenKind::LParen ||
           next == TokenKind::KwEps;
  }

  PhaseExprNode parse_phase_par() {
    PhaseExprNode first = parse_phase_rep();
    if (!at(TokenKind::ParBar)) {
      return first;
    }
    PhaseExprNode par;
    par.kind = PhaseExprNode::Kind::Par;
    par.loc = first.loc;
    par.children.push_back(std::move(first));
    while (accept(TokenKind::ParBar)) {
      par.children.push_back(parse_phase_rep());
    }
    return par;
  }

  PhaseExprNode parse_phase_rep() {
    PhaseExprNode body = parse_phase_atom();
    while (accept(TokenKind::Caret)) {
      PhaseExprNode rep;
      rep.kind = PhaseExprNode::Kind::Repeat;
      rep.loc = body.loc;
      rep.count = parse_primary();  // INT | IDENT | ( expr )
      rep.children.push_back(std::move(body));
      body = std::move(rep);
    }
    return body;
  }

  PhaseExprNode parse_phase_atom() {
    PhaseExprNode node;
    node.loc = current().loc;
    if (accept(TokenKind::KwEps)) {
      node.kind = PhaseExprNode::Kind::Idle;
      return node;
    }
    if (at(TokenKind::Identifier)) {
      node.kind = PhaseExprNode::Kind::Ref;
      node.ref_name = expect(TokenKind::Identifier).text;
      return node;
    }
    expect(TokenKind::LParen);
    node = parse_phase_expr();
    expect(TokenKind::RParen);
    return node;
  }

  // --- arithmetic / boolean expressions ----------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokenKind::KwOr)) {
      const SourceLoc loc = current().loc;
      ++pos_;
      lhs = Expr::binary(BinOp::Or, std::move(lhs), parse_and(), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (at(TokenKind::KwAnd)) {
      const SourceLoc loc = current().loc;
      ++pos_;
      lhs = Expr::binary(BinOp::And, std::move(lhs), parse_not(), loc);
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (at(TokenKind::KwNot)) {
      const SourceLoc loc = current().loc;
      ++pos_;
      return Expr::unary(UnOp::Not, parse_not(), loc);
    }
    return parse_cmp();
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    BinOp op;
    switch (current().kind) {
      case TokenKind::Eq: op = BinOp::Eq; break;
      case TokenKind::Ne: op = BinOp::Ne; break;
      case TokenKind::Lt: op = BinOp::Lt; break;
      case TokenKind::Le: op = BinOp::Le; break;
      case TokenKind::Gt: op = BinOp::Gt; break;
      case TokenKind::Ge: op = BinOp::Ge; break;
      default:
        return lhs;
    }
    const SourceLoc loc = current().loc;
    ++pos_;
    return Expr::binary(op, std::move(lhs), parse_add(), loc);
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    for (;;) {
      BinOp op;
      if (at(TokenKind::Plus)) {
        op = BinOp::Add;
      } else if (at(TokenKind::Minus)) {
        op = BinOp::Sub;
      } else {
        return lhs;
      }
      const SourceLoc loc = current().loc;
      ++pos_;
      lhs = Expr::binary(op, std::move(lhs), parse_mul(), loc);
    }
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      BinOp op;
      if (at(TokenKind::Star)) {
        op = BinOp::Mul;
      } else if (at(TokenKind::Slash)) {
        op = BinOp::Div;
      } else if (at(TokenKind::KwMod) || at(TokenKind::Percent)) {
        op = BinOp::Mod;
      } else {
        return lhs;
      }
      const SourceLoc loc = current().loc;
      ++pos_;
      lhs = Expr::binary(op, std::move(lhs), parse_unary(), loc);
    }
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::Minus)) {
      const SourceLoc loc = current().loc;
      ++pos_;
      return Expr::unary(UnOp::Neg, parse_unary(), loc);
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const SourceLoc loc = current().loc;
    if (at(TokenKind::Integer)) {
      return Expr::int_lit(expect(TokenKind::Integer).value, loc);
    }
    if (at(TokenKind::Identifier)) {
      std::string name = expect(TokenKind::Identifier).text;
      if (accept(TokenKind::LParen)) {
        std::vector<ExprPtr> args;
        if (!at(TokenKind::RParen)) {
          args.push_back(parse_expr());
          while (accept(TokenKind::Comma)) {
            args.push_back(parse_expr());
          }
        }
        expect(TokenKind::RParen);
        return Expr::call(std::move(name), std::move(args), loc);
      }
      return Expr::var(std::move(name), loc);
    }
    if (accept(TokenKind::LParen)) {
      ExprPtr e = parse_expr();
      expect(TokenKind::RParen);
      return e;
    }
    throw LarcsError("expected an expression but found " +
                         larcs::to_string(current().kind),
                     loc);
  }

  // --- post-parse semantic checks -----------------------------------------

  static void check_semantics(const Program& program) {
    std::set<std::string> names(program.params.begin(),
                                program.params.end());
    if (names.size() != program.params.size()) {
      throw LarcsError("duplicate algorithm parameter", program.loc);
    }
    auto declare = [&names, &program](const std::string& name,
                                      const char* what,
                                      SourceLoc loc = {}) {
      if (!names.insert(name).second) {
        throw LarcsError(std::string("duplicate declaration of '") + name +
                             "' (" + what + ")",
                         loc.line > 0 ? loc : program.loc);
      }
    };
    for (const auto& imp : program.imports) {
      declare(imp, "import");
    }
    for (const auto& [name, expr] : program.consts) {
      (void)expr;
      declare(name, "const");
    }
    for (const auto& nt : program.nodetypes) {
      declare(nt.name, "nodetype", nt.loc);
      std::set<std::string> binders;
      for (const auto& dim : nt.dims) {
        if (!binders.insert(dim.binder).second) {
          throw LarcsError("duplicate dimension binder '" + dim.binder +
                               "' in nodetype '" + nt.name + "'",
                           nt.loc);
        }
      }
    }
    std::set<std::string> phase_names;
    for (const auto& cp : program.comm_phases) {
      declare(cp.name, "comphase", cp.loc);
      phase_names.insert(cp.name);
      for (const auto& rule : cp.rules) {
        const auto* src = program.find_nodetype(rule.src_type);
        if (src == nullptr) {
          throw LarcsError("rule references unknown nodetype '" +
                               rule.src_type + "'",
                           rule.loc);
        }
        const auto* dst = program.find_nodetype(rule.dst_type);
        if (dst == nullptr) {
          throw LarcsError("rule references unknown nodetype '" +
                               rule.dst_type + "'",
                           rule.loc);
        }
        if (rule.pattern.size() != src->dims.size()) {
          throw LarcsError("rule pattern arity does not match nodetype '" +
                               rule.src_type + "'",
                           rule.loc);
        }
        if (rule.target.size() != dst->dims.size()) {
          throw LarcsError("rule target arity does not match nodetype '" +
                               rule.dst_type + "'",
                           rule.loc);
        }
        std::set<std::string> binders(rule.pattern.begin(),
                                      rule.pattern.end());
        if (binders.size() != rule.pattern.size()) {
          throw LarcsError("duplicate binder in rule pattern", rule.loc);
        }
        if (rule.forall_binder && binders.count(*rule.forall_binder) > 0) {
          throw LarcsError("forall binder shadows a pattern binder",
                           rule.loc);
        }
      }
    }
    for (const auto& ep : program.exec_phases) {
      declare(ep.name, "exphase", ep.loc);
      phase_names.insert(ep.name);
    }
    if (program.phase_expr) {
      check_phase_refs(*program.phase_expr, phase_names);
    }
    if (program.nodetypes.empty()) {
      throw LarcsError("program declares no nodetype", program.loc);
    }
  }

  static void check_phase_refs(const PhaseExprNode& node,
                               const std::set<std::string>& phase_names) {
    if (node.kind == PhaseExprNode::Kind::Ref &&
        phase_names.count(node.ref_name) == 0) {
      throw LarcsError("phase expression references unknown phase '" +
                           node.ref_name + "'",
                       node.loc);
    }
    for (const auto& child : node.children) {
      check_phase_refs(child, phase_names);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  const trace::Span span("parse");
  return Parser(lex(source)).parse();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(lex(source)).parse_standalone_expression();
}

}  // namespace oregami::larcs
