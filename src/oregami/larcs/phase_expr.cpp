#include "oregami/larcs/phase_expr.hpp"

#include <algorithm>

namespace oregami::larcs {

PhaseTree lower_phase_expr(const PhaseExprNode& node,
                           const PhaseNames& names, const Env& env) {
  switch (node.kind) {
    case PhaseExprNode::Kind::Idle:
      return PhaseTree::idle();
    case PhaseExprNode::Kind::Ref: {
      const auto comm_it =
          std::find(names.comm.begin(), names.comm.end(), node.ref_name);
      if (comm_it != names.comm.end()) {
        return PhaseTree::comm(
            static_cast<int>(comm_it - names.comm.begin()));
      }
      const auto exec_it =
          std::find(names.exec.begin(), names.exec.end(), node.ref_name);
      if (exec_it != names.exec.end()) {
        return PhaseTree::exec(
            static_cast<int>(exec_it - names.exec.begin()));
      }
      throw LarcsError("phase expression references unknown phase '" +
                           node.ref_name + "'",
                       node.loc);
    }
    case PhaseExprNode::Kind::Seq: {
      std::vector<PhaseTree> parts;
      parts.reserve(node.children.size());
      for (const auto& child : node.children) {
        parts.push_back(lower_phase_expr(child, names, env));
      }
      return PhaseTree::seq(std::move(parts));
    }
    case PhaseExprNode::Kind::Par: {
      std::vector<PhaseTree> parts;
      parts.reserve(node.children.size());
      for (const auto& child : node.children) {
        parts.push_back(lower_phase_expr(child, names, env));
      }
      return PhaseTree::par(std::move(parts));
    }
    case PhaseExprNode::Kind::Repeat: {
      const long count = eval(node.count, env);
      if (count < 0) {
        throw LarcsError("phase repetition count is negative", node.loc);
      }
      return PhaseTree::repeat(
          lower_phase_expr(node.children.front(), names, env), count);
    }
  }
  return PhaseTree::idle();
}

}  // namespace oregami::larcs
