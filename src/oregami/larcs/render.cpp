#include "oregami/larcs/render.hpp"

namespace oregami::larcs {

namespace {

void render_noderef(std::string& out, const std::string& type,
                    const std::vector<std::string>& args) {
  out += type + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += args[i];
  }
  out += ")";
}

}  // namespace

std::string render_program(const Program& program) {
  std::string out = "algorithm " + program.name + "(";
  for (std::size_t i = 0; i < program.params.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += program.params[i];
  }
  out += ");\n";

  if (!program.imports.empty()) {
    out += "import ";
    for (std::size_t i = 0; i < program.imports.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += program.imports[i];
    }
    out += ";\n";
  }
  for (const auto& [name, value] : program.consts) {
    out += "const " + name + " = " + value->to_string() + ";\n";
  }
  if (program.family_hint) {
    out += "family " + *program.family_hint + ";\n";
  }
  for (const auto& nt : program.nodetypes) {
    out += "nodetype " + nt.name + "[";
    for (std::size_t d = 0; d < nt.dims.size(); ++d) {
      if (d != 0) {
        out += ", ";
      }
      out += nt.dims[d].binder + ": " + nt.dims[d].lo->to_string() +
             " .. " + nt.dims[d].hi->to_string();
    }
    out += "]";
    if (nt.node_symmetric) {
      out += " nodesymmetric";
    }
    out += ";\n";
  }
  for (const auto& cp : program.comm_phases) {
    out += "comphase " + cp.name + " {\n";
    for (const auto& rule : cp.rules) {
      out += "  ";
      render_noderef(out, rule.src_type, rule.pattern);
      out += " -> ";
      std::vector<std::string> targets;
      targets.reserve(rule.target.size());
      for (const auto& e : rule.target) {
        targets.push_back(e->to_string());
      }
      render_noderef(out, rule.dst_type, targets);
      if (rule.forall_binder) {
        out += " forall " + *rule.forall_binder + ": " +
               rule.forall_lo->to_string() + " .. " +
               rule.forall_hi->to_string();
      }
      if (rule.guard) {
        out += " when " + rule.guard->to_string();
      }
      if (rule.volume) {
        out += " volume " + rule.volume->to_string();
      }
      out += ";\n";
    }
    out += "}\n";
  }
  for (const auto& ep : program.exec_phases) {
    out += "exphase " + ep.name + " cost " + ep.cost->to_string() + ";\n";
  }
  if (program.phase_expr) {
    out += "phases " + program.phase_expr->to_string() + ";\n";
  }
  return out;
}

}  // namespace oregami::larcs
