// Programmatic stand-in for METRICS' interactive click-and-drag loop
// (paper §5): the user inspects a mapping, reassigns tasks or re-routes
// individual communication edges, and METRICS recomputes the
// performance metrics. Every edit validates, is undoable, and reports
// the metric delta it caused.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "oregami/mapper/repair.hpp"
#include "oregami/metrics/metrics.hpp"

namespace oregami {

/// Result of one session edit: the recomputed metrics plus the change
/// in headline numbers (negative deltas are improvements).
struct EditReport {
  MappingMetrics before;
  MappingMetrics after;

  [[nodiscard]] std::int64_t completion_delta() const {
    return after.completion - before.completion;
  }
  [[nodiscard]] std::int64_t ipc_delta() const {
    return after.total_ipc - before.total_ipc;
  }
};

class MetricsSession {
 public:
  /// Starts from a MAPPER-produced mapping. The session works at task
  /// granularity (the contraction is dissolved into per-task processor
  /// assignments, which is what click-and-drag edits manipulate).
  MetricsSession(const TaskGraph& graph, const Topology& topo,
                 const Mapping& mapping, CostModel model = {});

  [[nodiscard]] const std::vector<int>& proc_of_task() const {
    return proc_of_task_;
  }
  [[nodiscard]] const std::vector<PhaseRouting>& routing() const {
    return routing_;
  }
  [[nodiscard]] const MappingMetrics& metrics() const { return metrics_; }

  /// Moves `task` to `proc` and re-routes every comm edge incident to
  /// it (other routes are untouched). Throws MappingError on a bad
  /// task/processor id.
  EditReport move_task(int task, int proc);

  /// Replaces the route of edge `edge_index` of phase `phase_index`
  /// with a user-supplied route; the route must be a valid walk between
  /// the current endpoint processors. Throws MappingError otherwise.
  EditReport reroute_edge(int phase_index, int edge_index, Route route);

  /// Installs a repaired mapping (mapper/repair.hpp) as one undoable
  /// session edit: the fault event plus the whole repair delta land in
  /// the history as a single move, so undo() restores the pre-fault
  /// placement, routing, and metrics exactly. The repair must be for
  /// this session's graph and (base) topology.
  EditReport apply_repair(const RepairResult& repair);

  /// Undoes the most recent edit; returns false when the history is
  /// empty.
  bool undo();

  /// Number of edits applied and not undone.
  [[nodiscard]] std::size_t history_size() const {
    return history_.size();
  }

 private:
  struct Snapshot {
    std::vector<int> proc_of_task;
    std::vector<PhaseRouting> routing;
    MappingMetrics metrics;
  };

  void recompute_metrics();
  void reroute_task_edges(int task);

  const TaskGraph& graph_;
  const Topology& topo_;
  CostModel model_;
  std::vector<int> proc_of_task_;
  std::vector<PhaseRouting> routing_;
  MappingMetrics metrics_;
  std::vector<Snapshot> history_;
};

}  // namespace oregami
