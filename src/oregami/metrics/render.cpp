#include "oregami/metrics/render.hpp"

#include <algorithm>

#include "oregami/support/text_table.hpp"

namespace oregami {

namespace {

const char* kDotColors[] = {"red",    "blue",   "forestgreen", "orange",
                            "purple", "brown",  "deeppink",    "cadetblue",
                            "gold3",  "gray40", "cyan4",       "magenta3"};

std::vector<std::vector<int>> tasks_by_proc(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    int num_procs) {
  std::vector<std::vector<int>> result(
      static_cast<std::size_t>(num_procs));
  for (int t = 0; t < graph.num_tasks(); ++t) {
    result[static_cast<std::size_t>(
               proc_of_task[static_cast<std::size_t>(t)])]
        .push_back(t);
  }
  return result;
}

}  // namespace

std::string render_assignment_table(const TaskGraph& graph,
                                    const std::vector<int>& proc_of_task,
                                    const Topology& topo) {
  const auto by_proc =
      tasks_by_proc(graph, proc_of_task, topo.num_procs());
  const auto exec_mult = graph.exec_phase_multiplicity();
  TextTable table({"proc", "label", "#tasks", "tasks", "exec load"});
  for (int p = 0; p < topo.num_procs(); ++p) {
    const auto& tasks = by_proc[static_cast<std::size_t>(p)];
    std::string names;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (i != 0) {
        names += " ";
      }
      names += graph.task_name(tasks[i]);
    }
    std::int64_t load = 0;
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      for (const int t : tasks) {
        load += exec_mult[k] *
                graph.exec_phases()[k].cost[static_cast<std::size_t>(t)];
      }
    }
    table.add_row({std::to_string(p), topo.proc_label(p),
                   std::to_string(tasks.size()), names,
                   std::to_string(load)});
  }
  return table.to_string();
}

std::string render_link_table(const MappingMetrics& metrics,
                              const Topology& topo) {
  std::string out;
  for (const auto& pm : metrics.phases) {
    out += "phase '" + pm.phase_name + "'  (max contention " +
           std::to_string(pm.max_contention) + ", avg dilation " +
           format_fixed(pm.avg_dilation, 3) + ", time " +
           std::to_string(pm.phase_time) + ")\n";
    TextTable table({"link", "joins", "contention", "volume"});
    for (int l = 0; l < topo.num_links(); ++l) {
      const int contention =
          pm.contention_per_link[static_cast<std::size_t>(l)];
      if (contention == 0) {
        continue;
      }
      const auto [u, v] = topo.link_endpoints(l);
      table.add_row({std::to_string(l),
                     topo.proc_label(u) + " -- " + topo.proc_label(v),
                     std::to_string(contention),
                     std::to_string(
                         pm.volume_per_link[static_cast<std::size_t>(l)])});
    }
    out += table.to_string();
  }
  return out;
}

std::string render_summary(const MappingMetrics& metrics) {
  TextTable table({"metric", "value"});
  table.add_row({"completion time", std::to_string(metrics.completion)});
  table.add_row({"total IPC volume", std::to_string(metrics.total_ipc)});
  table.add_row({"avg dilation", format_fixed(metrics.avg_dilation, 3)});
  table.add_row({"max dilation", std::to_string(metrics.max_dilation)});
  table.add_row({"max tasks/proc", std::to_string(metrics.load.max_tasks)});
  table.add_row(
      {"exec imbalance", format_fixed(metrics.load.exec_imbalance, 3)});
  return table.to_string();
}

std::string render_ascii_layout(const TaskGraph& graph,
                                const std::vector<int>& proc_of_task,
                                const Topology& topo) {
  const auto by_proc =
      tasks_by_proc(graph, proc_of_task, topo.num_procs());
  if (topo.family() == TopoFamily::Mesh ||
      topo.family() == TopoFamily::Torus) {
    const int rows = topo.shape()[0];
    const int cols = topo.shape()[1];
    // Cell shows the first task (or count when several).
    std::vector<std::string> cells(
        static_cast<std::size_t>(rows * cols));
    std::size_t width = 1;
    for (int p = 0; p < topo.num_procs(); ++p) {
      const auto& tasks = by_proc[static_cast<std::size_t>(p)];
      std::string text =
          tasks.empty()
              ? "."
              : (tasks.size() == 1
                     ? graph.task_name(tasks[0])
                     : graph.task_name(tasks[0]) + "+" +
                           std::to_string(tasks.size() - 1));
      width = std::max(width, text.size());
      cells[static_cast<std::size_t>(p)] = std::move(text);
    }
    std::string out;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const auto& text =
            cells[static_cast<std::size_t>(topo.at2d(r, c))];
        out += text;
        out.append(width - text.size() + 2, ' ');
      }
      out += '\n';
    }
    return out;
  }
  if (topo.family() == TopoFamily::Ring ||
      topo.family() == TopoFamily::Chain) {
    std::string out;
    for (int p = 0; p < topo.num_procs(); ++p) {
      if (p != 0) {
        out += " -- ";
      }
      const auto& tasks = by_proc[static_cast<std::size_t>(p)];
      out += "[" +
             (tasks.empty() ? std::string(".")
                            : graph.task_name(tasks[0]) +
                                  (tasks.size() > 1
                                       ? "+" +
                                             std::to_string(tasks.size() - 1)
                                       : "")) +
             "]";
    }
    if (topo.family() == TopoFamily::Ring) {
      out += " -- (wraps)";
    }
    out += '\n';
    return out;
  }
  return render_assignment_table(graph, proc_of_task, topo);
}

std::string render_task_graph_dot(const TaskGraph& graph) {
  std::string out = "digraph task_graph {\n  node [shape=circle];\n";
  for (int t = 0; t < graph.num_tasks(); ++t) {
    out += "  t" + std::to_string(t) + " [label=\"" + graph.task_name(t) +
           "\"];\n";
  }
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& phase = graph.comm_phases()[k];
    const char* color = kDotColors[k % (sizeof(kDotColors) /
                                        sizeof(kDotColors[0]))];
    for (const auto& e : phase.edges) {
      out += "  t" + std::to_string(e.src) + " -> t" +
             std::to_string(e.dst) + " [color=" + color + ", label=\"" +
             phase.name + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string render_mapping_dot(const TaskGraph& graph,
                               const std::vector<int>& proc_of_task,
                               const Topology& topo) {
  const auto by_proc =
      tasks_by_proc(graph, proc_of_task, topo.num_procs());
  std::string out = "graph mapping {\n  node [shape=box];\n";
  for (int p = 0; p < topo.num_procs(); ++p) {
    std::string label = "proc " + std::to_string(p) + " [" +
                        topo.proc_label(p) + "]";
    for (const int t : by_proc[static_cast<std::size_t>(p)]) {
      label += "\\n" + graph.task_name(t);
    }
    out += "  p" + std::to_string(p) + " [label=\"" + label + "\"];\n";
  }
  for (const auto& e : topo.graph().edges()) {
    out += "  p" + std::to_string(e.u) + " -- p" + std::to_string(e.v) +
           ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace oregami
