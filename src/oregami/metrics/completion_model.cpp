#include "oregami/metrics/completion_model.hpp"

#include <algorithm>
#include <string>

#include "oregami/support/error.hpp"

namespace oregami {

std::int64_t comm_phase_time(const TaskGraph& graph, int phase_index,
                             const PhaseRouting& routing,
                             const Topology& topo, const CostModel& model) {
  const auto& phase =
      graph.comm_phases()[static_cast<std::size_t>(phase_index)];
  OREGAMI_ASSERT(routing.route_of_edge.size() == phase.edges.size(),
                 "routing must cover the phase");
  // Scratch reused across calls (per thread): refinement sweeps and
  // portfolio scoring call this in a tight loop, and the per-call
  // vector allocation dominated the profile.
  thread_local std::vector<std::int64_t> volume_on_link;
  volume_on_link.assign(static_cast<std::size_t>(topo.num_links()), 0);
  int max_hops = 0;
  for (std::size_t i = 0; i < phase.edges.size(); ++i) {
    const auto& route = routing.route_of_edge[i];
    for (const int link : route.links) {
      volume_on_link[static_cast<std::size_t>(link)] +=
          phase.edges[i].volume;
    }
    max_hops = std::max(max_hops, route.hops());
  }
  const std::int64_t max_volume =
      volume_on_link.empty()
          ? 0
          : *std::max_element(volume_on_link.begin(), volume_on_link.end());
  return max_volume * model.per_unit_cost +
         static_cast<std::int64_t>(max_hops) * model.hop_latency;
}

std::int64_t exec_phase_time(const TaskGraph& graph, int phase_index,
                             const std::vector<int>& proc_of_task,
                             int num_procs) {
  const auto& phase =
      graph.exec_phases()[static_cast<std::size_t>(phase_index)];
  thread_local std::vector<std::int64_t> load;
  load.assign(static_cast<std::size_t>(num_procs), 0);
  for (int t = 0; t < graph.num_tasks(); ++t) {
    load[static_cast<std::size_t>(proc_of_task[static_cast<std::size_t>(t)])] +=
        phase.cost[static_cast<std::size_t>(t)];
  }
  return load.empty() ? 0 : *std::max_element(load.begin(), load.end());
}

namespace {

std::int64_t walk(const PhaseTree& node, const TaskGraph& graph,
                  const std::vector<int>& proc_of_task,
                  const std::vector<PhaseRouting>& routing,
                  const Topology& topo, const CostModel& model) {
  switch (node.kind) {
    case PhaseTree::Kind::Idle:
      return 0;
    case PhaseTree::Kind::Comm:
      return comm_phase_time(
          graph, node.phase_index,
          routing[static_cast<std::size_t>(node.phase_index)], topo, model);
    case PhaseTree::Kind::Exec:
      return exec_phase_time(graph, node.phase_index, proc_of_task,
                             topo.num_procs());
    case PhaseTree::Kind::Seq: {
      std::int64_t total = 0;
      for (const auto& child : node.children) {
        total += walk(child, graph, proc_of_task, routing, topo, model);
      }
      return total;
    }
    case PhaseTree::Kind::Par: {
      std::int64_t best = 0;
      for (const auto& child : node.children) {
        best = std::max(best,
                        walk(child, graph, proc_of_task, routing, topo,
                             model));
      }
      return best;
    }
    case PhaseTree::Kind::Repeat:
      return node.count * walk(node.children.front(), graph, proc_of_task,
                               routing, topo, model);
  }
  return 0;
}

}  // namespace

std::int64_t completion_time(const TaskGraph& graph,
                             const std::vector<int>& proc_of_task,
                             const std::vector<PhaseRouting>& routing,
                             const Topology& topo, const CostModel& model) {
  OREGAMI_ASSERT(routing.size() == graph.comm_phases().size(),
                 "routing must cover every phase");
  if (graph.phase_expr().kind == PhaseTree::Kind::Idle) {
    // Static fallback: every phase once, sequentially.
    std::int64_t total = 0;
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      total += comm_phase_time(graph, static_cast<int>(k), routing[k],
                               topo, model);
    }
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      total += exec_phase_time(graph, static_cast<int>(k), proc_of_task,
                               topo.num_procs());
    }
    return total;
  }
  return walk(graph.phase_expr(), graph, proc_of_task, routing, topo,
              model);
}

PlacementObjectives extract_objectives(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const std::vector<PhaseRouting>& routing, const Topology& topo,
    const CostModel& model) {
  PlacementObjectives obj;
  obj.completion =
      completion_time(graph, proc_of_task, routing, topo, model);

  const auto comm_mult = graph.comm_phase_multiplicity();
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    std::int64_t phase_volume = 0;
    for (const auto& e : graph.comm_phases()[k].edges) {
      if (proc_of_task[static_cast<std::size_t>(e.src)] !=
          proc_of_task[static_cast<std::size_t>(e.dst)]) {
        phase_volume += e.volume;
      }
    }
    obj.external_ipc += phase_volume * comm_mult[k];
  }

  const auto exec_mult = graph.exec_phase_multiplicity();
  std::vector<std::int64_t> load(static_cast<std::size_t>(topo.num_procs()),
                                 0);
  for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
    const auto& phase = graph.exec_phases()[k];
    if (exec_mult[k] <= 0 || phase.cost.empty()) {
      continue;
    }
    for (int t = 0; t < graph.num_tasks(); ++t) {
      load[static_cast<std::size_t>(
          proc_of_task[static_cast<std::size_t>(t)])] +=
          exec_mult[k] * phase.cost[static_cast<std::size_t>(t)];
    }
  }
  obj.max_load =
      load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  return obj;
}

namespace {

/// comm_phase_time with each link's volume weighted by its slowdown.
std::int64_t degraded_comm_phase_time(const TaskGraph& graph,
                                      int phase_index,
                                      const PhaseRouting& routing,
                                      const FaultedTopology& faults,
                                      const CostModel& model) {
  const auto& phase =
      graph.comm_phases()[static_cast<std::size_t>(phase_index)];
  OREGAMI_ASSERT(routing.route_of_edge.size() == phase.edges.size(),
                 "routing must cover the phase");
  const Topology& topo = faults.base();
  thread_local std::vector<std::int64_t> volume_on_link;
  volume_on_link.assign(static_cast<std::size_t>(topo.num_links()), 0);
  int max_hops = 0;
  for (std::size_t i = 0; i < phase.edges.size(); ++i) {
    const auto& route = routing.route_of_edge[i];
    for (const int link : route.links) {
      volume_on_link[static_cast<std::size_t>(link)] +=
          phase.edges[i].volume * faults.link_slowdown(link);
    }
    max_hops = std::max(max_hops, route.hops());
  }
  const std::int64_t max_volume =
      volume_on_link.empty()
          ? 0
          : *std::max_element(volume_on_link.begin(), volume_on_link.end());
  return max_volume * model.per_unit_cost +
         static_cast<std::int64_t>(max_hops) * model.hop_latency;
}

std::int64_t degraded_walk(const PhaseTree& node, const TaskGraph& graph,
                           const std::vector<int>& proc_of_task,
                           const std::vector<PhaseRouting>& routing,
                           const FaultedTopology& faults,
                           const CostModel& model) {
  switch (node.kind) {
    case PhaseTree::Kind::Idle:
      return 0;
    case PhaseTree::Kind::Comm:
      return degraded_comm_phase_time(
          graph, node.phase_index,
          routing[static_cast<std::size_t>(node.phase_index)], faults,
          model);
    case PhaseTree::Kind::Exec:
      return exec_phase_time(graph, node.phase_index, proc_of_task,
                             faults.base().num_procs());
    case PhaseTree::Kind::Seq: {
      std::int64_t total = 0;
      for (const auto& child : node.children) {
        total += degraded_walk(child, graph, proc_of_task, routing, faults,
                               model);
      }
      return total;
    }
    case PhaseTree::Kind::Par: {
      std::int64_t best = 0;
      for (const auto& child : node.children) {
        best = std::max(best, degraded_walk(child, graph, proc_of_task,
                                            routing, faults, model));
      }
      return best;
    }
    case PhaseTree::Kind::Repeat:
      return node.count * degraded_walk(node.children.front(), graph,
                                        proc_of_task, routing, faults,
                                        model);
  }
  return 0;
}

}  // namespace

std::int64_t degraded_completion_time(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const std::vector<PhaseRouting>& routing, const FaultedTopology& faults,
    const CostModel& model) {
  OREGAMI_ASSERT(routing.size() == graph.comm_phases().size(),
                 "routing must cover every phase");
  for (int t = 0; t < graph.num_tasks(); ++t) {
    const int p = proc_of_task[static_cast<std::size_t>(t)];
    if (!faults.proc_alive(p)) {
      throw MappingError("task " + std::to_string(t) +
                         " is placed on dead processor " +
                         std::to_string(p));
    }
  }
  for (std::size_t k = 0; k < routing.size(); ++k) {
    for (std::size_t m = 0; m < routing[k].route_of_edge.size(); ++m) {
      if (!faults.route_alive(routing[k].route_of_edge[m])) {
        throw MappingError("comm phase " + std::to_string(k) +
                           " message " + std::to_string(m) +
                           " is routed across a dead link or processor");
      }
    }
  }
  if (graph.phase_expr().kind == PhaseTree::Kind::Idle) {
    std::int64_t total = 0;
    for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
      total += degraded_comm_phase_time(graph, static_cast<int>(k),
                                        routing[k], faults, model);
    }
    for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
      total += exec_phase_time(graph, static_cast<int>(k), proc_of_task,
                               faults.base().num_procs());
    }
    return total;
  }
  return degraded_walk(graph.phase_expr(), graph, proc_of_task, routing,
                       faults, model);
}

}  // namespace oregami
