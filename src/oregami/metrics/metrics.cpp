#include "oregami/metrics/metrics.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

MappingMetrics compute_metrics(const TaskGraph& graph,
                               const std::vector<int>& proc_of_task,
                               const std::vector<PhaseRouting>& routing,
                               const Topology& topo,
                               const CostModel& model) {
  OREGAMI_ASSERT(proc_of_task.size() ==
                     static_cast<std::size_t>(graph.num_tasks()),
                 "proc_of_task must cover every task");
  OREGAMI_ASSERT(routing.size() == graph.comm_phases().size(),
                 "routing must cover every phase");
  MappingMetrics out;
  const int p = topo.num_procs();

  // --- load metrics.
  out.load.tasks_per_proc.assign(static_cast<std::size_t>(p), 0);
  out.load.exec_per_proc.assign(static_cast<std::size_t>(p), 0);
  for (int t = 0; t < graph.num_tasks(); ++t) {
    ++out.load
          .tasks_per_proc[static_cast<std::size_t>(
              proc_of_task[static_cast<std::size_t>(t)])];
  }
  const auto exec_mult = graph.exec_phase_multiplicity();
  for (std::size_t k = 0; k < graph.exec_phases().size(); ++k) {
    const auto& phase = graph.exec_phases()[k];
    for (int t = 0; t < graph.num_tasks(); ++t) {
      out.load.exec_per_proc[static_cast<std::size_t>(
          proc_of_task[static_cast<std::size_t>(t)])] +=
          exec_mult[k] * phase.cost[static_cast<std::size_t>(t)];
    }
  }
  out.load.max_tasks = *std::max_element(out.load.tasks_per_proc.begin(),
                                         out.load.tasks_per_proc.end());
  out.load.avg_tasks =
      static_cast<double>(graph.num_tasks()) / static_cast<double>(p);
  out.load.max_exec = *std::max_element(out.load.exec_per_proc.begin(),
                                        out.load.exec_per_proc.end());
  std::int64_t total_exec = 0;
  for (const auto e : out.load.exec_per_proc) {
    total_exec += e;
  }
  out.load.exec_imbalance =
      total_exec == 0 ? 1.0
                      : static_cast<double>(out.load.max_exec) * p /
                            static_cast<double>(total_exec);

  // --- link metrics per phase.
  const auto comm_mult = graph.comm_phase_multiplicity();
  long total_edges = 0;
  long total_dilation = 0;
  for (std::size_t k = 0; k < graph.comm_phases().size(); ++k) {
    const auto& phase = graph.comm_phases()[k];
    PhaseLinkMetrics pm;
    pm.phase_name = phase.name;
    pm.contention_per_link.assign(
        static_cast<std::size_t>(topo.num_links()), 0);
    pm.volume_per_link.assign(static_cast<std::size_t>(topo.num_links()),
                              0);
    long phase_dilation = 0;
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& route = routing[k].route_of_edge[i];
      for (const int link : route.links) {
        ++pm.contention_per_link[static_cast<std::size_t>(link)];
        pm.volume_per_link[static_cast<std::size_t>(link)] +=
            phase.edges[i].volume;
      }
      pm.max_dilation = std::max(pm.max_dilation, route.hops());
      phase_dilation += route.hops();
      if (route.hops() > 0) {
        out.total_ipc += comm_mult[k] * phase.edges[i].volume;
      }
    }
    pm.avg_dilation =
        phase.edges.empty()
            ? 0.0
            : static_cast<double>(phase_dilation) /
                  static_cast<double>(phase.edges.size());
    int links_used = 0;
    long contention_sum = 0;
    for (const int c : pm.contention_per_link) {
      if (c > 0) {
        ++links_used;
        contention_sum += c;
      }
      pm.max_contention = std::max(pm.max_contention, c);
    }
    pm.avg_contention =
        links_used == 0 ? 0.0
                        : static_cast<double>(contention_sum) /
                              static_cast<double>(links_used);
    pm.phase_time = comm_phase_time(graph, static_cast<int>(k), routing[k],
                                    topo, model);
    out.max_dilation = std::max(out.max_dilation, pm.max_dilation);
    total_edges += static_cast<long>(phase.edges.size());
    total_dilation += phase_dilation;
    out.phases.push_back(std::move(pm));
  }
  out.avg_dilation = total_edges == 0
                         ? 0.0
                         : static_cast<double>(total_dilation) /
                               static_cast<double>(total_edges);

  out.completion =
      completion_time(graph, proc_of_task, routing, topo, model);
  return out;
}

MappingMetrics compute_metrics(const TaskGraph& graph,
                               const Mapping& mapping, const Topology& topo,
                               const CostModel& model) {
  return compute_metrics(graph, mapping.proc_of_task(), mapping.routing,
                         topo, model);
}

}  // namespace oregami
