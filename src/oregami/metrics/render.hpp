// Text renderers standing in for the original METRICS colour displays
// (see DESIGN.md substitution table): tabular metric reports, an ASCII
// picture of mesh/ring placements, and Graphviz DOT export of the task
// graph and its mapping.
#pragma once

#include <string>

#include "oregami/metrics/metrics.hpp"

namespace oregami {

/// Processor table: proc | tasks | task names | exec load.
[[nodiscard]] std::string render_assignment_table(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo);

/// Per-phase link table: link | endpoints | contention | volume.
[[nodiscard]] std::string render_link_table(const MappingMetrics& metrics,
                                            const Topology& topo);

/// Headline metrics (completion, IPC, dilation, balance).
[[nodiscard]] std::string render_summary(const MappingMetrics& metrics);

/// ASCII grid of a mesh/torus placement (task counts per cell) or a
/// one-line ring/chain layout; falls back to the assignment table for
/// other topologies.
[[nodiscard]] std::string render_ascii_layout(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo);

/// Graphviz DOT of the colored task graph (one edge color per phase).
[[nodiscard]] std::string render_task_graph_dot(const TaskGraph& graph);

/// Graphviz DOT of the mapping: processors as clusters of tasks, links
/// as edges.
[[nodiscard]] std::string render_mapping_dot(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const Topology& topo);

}  // namespace oregami
