#include "oregami/metrics/incremental.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "oregami/arch/routes.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/trace.hpp"

namespace oregami {

namespace {
constexpr std::int64_t kNoSecond = std::numeric_limits<std::int64_t>::min();

std::int64_t cost_of(const ExecPhase& phase, int task) {
  // An empty cost vector means all-zero (TaskGraph contract).
  return phase.cost.empty()
             ? 0
             : phase.cost[static_cast<std::size_t>(task)];
}
}  // namespace

IncrementalCompletion::IncrementalCompletion(
    const TaskGraph& graph, const Topology& topo,
    std::vector<int> proc_of_task, std::vector<PhaseRouting> routing,
    CostModel model, std::vector<std::int64_t> link_factor)
    : graph_(graph),
      topo_(topo),
      model_(model),
      proc_of_task_(std::move(proc_of_task)),
      routing_(std::move(routing)),
      link_factor_(std::move(link_factor)) {
  const int num_tasks = graph_.num_tasks();
  const int num_procs = topo_.num_procs();
  OREGAMI_ASSERT(static_cast<int>(proc_of_task_.size()) == num_tasks,
                 "placement must cover every task");
  OREGAMI_ASSERT(link_factor_.empty() ||
                     static_cast<int>(link_factor_.size()) ==
                         topo_.num_links(),
                 "link factors must cover every link");
  for (const std::int64_t f : link_factor_) {
    OREGAMI_ASSERT(f >= 1, "link factors must be >= 1");
  }
  OREGAMI_ASSERT(routing_.size() == graph_.comm_phases().size(),
                 "routing must cover every comm phase");
  for (const int p : proc_of_task_) {
    OREGAMI_ASSERT(p >= 0 && p < num_procs, "task placed off-topology");
  }

  incident_.assign(static_cast<std::size_t>(num_tasks), {});
  comm_.resize(graph_.comm_phases().size());
  for (std::size_t k = 0; k < graph_.comm_phases().size(); ++k) {
    const auto& phase = graph_.comm_phases()[k];
    OREGAMI_ASSERT(routing_[k].route_of_edge.size() == phase.edges.size(),
                   "routing must cover the phase");
    auto& state = comm_[k];
    state.volume.assign(static_cast<std::size_t>(topo_.num_links()), 0);
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& edge = phase.edges[i];
      OREGAMI_ASSERT(edge.volume >= 0, "negative comm volume");
      const auto& route = routing_[k].route_of_edge[i];
      for (const int link : route.links) {
        state.volume[static_cast<std::size_t>(link)] +=
            edge.volume * link_weight(link);
      }
      const int hb = hop_bucket(route.hops());
      if (static_cast<int>(state.hops_hist.size()) <= hb) {
        state.hops_hist.resize(static_cast<std::size_t>(hb) + 1, 0);
      }
      ++state.hops_hist[static_cast<std::size_t>(hb)];
      incident_[static_cast<std::size_t>(edge.src)].push_back(
          {static_cast<int>(k), static_cast<int>(i)});
      if (edge.dst != edge.src) {
        incident_[static_cast<std::size_t>(edge.dst)].push_back(
            {static_cast<int>(k), static_cast<int>(i)});
      }
    }
    rebuild_comm_maxima(state);
  }

  exec_.resize(graph_.exec_phases().size());
  for (std::size_t k = 0; k < graph_.exec_phases().size(); ++k) {
    const auto& phase = graph_.exec_phases()[k];
    auto& state = exec_[k];
    state.load.assign(static_cast<std::size_t>(num_procs), 0);
    for (int t = 0; t < num_tasks; ++t) {
      const std::int64_t c = cost_of(phase, t);
      OREGAMI_ASSERT(c >= 0, "negative exec cost");
      state.load[static_cast<std::size_t>(
          proc_of_task_[static_cast<std::size_t>(t)])] += c;
    }
    rebuild_exec_tracker(state);
  }

  comm_times_.resize(comm_.size());
  for (std::size_t k = 0; k < comm_.size(); ++k) {
    comm_times_[k] = comm_time_of(comm_[k]);
  }
  exec_times_.resize(exec_.size());
  for (std::size_t k = 0; k < exec_.size(); ++k) {
    exec_times_[k] = exec_[k].max;
  }
  completion_ = combine(comm_times_, exec_times_);

  link_delta_.assign(static_cast<std::size_t>(topo_.num_links()), 0);
}

IncrementalCompletion::IncrementalCompletion(
    const TaskGraph& graph, const Topology& topo, const Mapping& mapping,
    CostModel model, std::vector<std::int64_t> link_factor)
    : IncrementalCompletion(graph, topo, mapping.proc_of_task(),
                            mapping.routing, model,
                            std::move(link_factor)) {}

CommPhaseSnapshot IncrementalCompletion::comm_snapshot(int phase) const {
  const auto& state = comm_[static_cast<std::size_t>(phase)];
  CommPhaseSnapshot snap;
  snap.max_volume = state.max_volume;
  snap.max_hops = state.max_hops;
  snap.hops_hist = state.hops_hist;
  for (const std::int64_t v : state.volume) {
    if (v > 0) {
      snap.total_volume += v;
      ++snap.used_links;
    }
  }
  return snap;
}

std::int64_t IncrementalCompletion::exec_max_load(int phase) const {
  return exec_[static_cast<std::size_t>(phase)].max;
}

void IncrementalCompletion::trace_phase_counters() const {
  if (!trace::enabled()) {
    return;
  }
  for (std::size_t k = 0; k < comm_.size(); ++k) {
    const std::string name = graph_.comm_phases()[k].name;
    const CommPhaseSnapshot snap = comm_snapshot(static_cast<int>(k));
    trace::counter(name + "/max_link_volume", snap.max_volume);
    trace::counter(name + "/total_volume", snap.total_volume);
    trace::counter(name + "/used_links", snap.used_links);
    trace::counter(name + "/max_hops", snap.max_hops);
    for (std::size_t h = 0; h < snap.hops_hist.size(); ++h) {
      if (snap.hops_hist[h] > 0) {
        trace::counter(name + "/hops=" + std::to_string(h),
                       snap.hops_hist[h]);
      }
    }
  }
  for (std::size_t k = 0; k < exec_.size(); ++k) {
    trace::counter(graph_.exec_phases()[k].name + "/max_load",
                   exec_[k].max);
  }
}

void IncrementalCompletion::rebuild_exec_tracker(ExecState& state) const {
  state.max = 0;
  state.count_at_max = 0;
  state.second = kNoSecond;
  for (const std::int64_t load : state.load) {
    if (load > state.max) {
      state.second = state.max;
      state.max = load;
      state.count_at_max = 1;
    } else if (load == state.max) {
      ++state.count_at_max;
    } else if (load > state.second) {
      state.second = load;
    }
  }
  // All-zero loads leave second at the sentinel; normalise so the
  // "unique max holder shrinks" branch can use it directly.
  if (state.second == kNoSecond) {
    state.second = 0;
  }
}

void IncrementalCompletion::rebuild_comm_maxima(CommState& state) const {
  state.max_volume =
      state.volume.empty()
          ? 0
          : *std::max_element(state.volume.begin(), state.volume.end());
  state.max_hops = 0;
  for (std::size_t h = state.hops_hist.size(); h-- > 0;) {
    if (state.hops_hist[h] > 0) {
      state.max_hops = static_cast<int>(h);
      break;
    }
  }
}

Route IncrementalCompletion::route_for(int phase, int edge) const {
  const auto& e = graph_.comm_phases()[static_cast<std::size_t>(phase)]
                      .edges[static_cast<std::size_t>(edge)];
  const int src = proc_of_task_[static_cast<std::size_t>(e.src)];
  const int dst = proc_of_task_[static_cast<std::size_t>(e.dst)];
  if (src == dst) {
    return Route{{src}, {}};
  }
  return greedy_shortest_route(topo_, src, dst);
}

std::int64_t IncrementalCompletion::comm_time_of(
    const CommState& state) const {
  return state.max_volume * model_.per_unit_cost +
         static_cast<std::int64_t>(state.max_hops) * model_.hop_latency;
}

std::int64_t IncrementalCompletion::walk(
    const PhaseTree& node, const std::vector<std::int64_t>& comm_times,
    const std::vector<std::int64_t>& exec_times) const {
  switch (node.kind) {
    case PhaseTree::Kind::Idle:
      return 0;
    case PhaseTree::Kind::Comm:
      return comm_times[static_cast<std::size_t>(node.phase_index)];
    case PhaseTree::Kind::Exec:
      return exec_times[static_cast<std::size_t>(node.phase_index)];
    case PhaseTree::Kind::Seq: {
      std::int64_t total = 0;
      for (const auto& child : node.children) {
        total += walk(child, comm_times, exec_times);
      }
      return total;
    }
    case PhaseTree::Kind::Par: {
      std::int64_t best = 0;
      for (const auto& child : node.children) {
        best = std::max(best, walk(child, comm_times, exec_times));
      }
      return best;
    }
    case PhaseTree::Kind::Repeat:
      return node.count *
             walk(node.children.front(), comm_times, exec_times);
  }
  return 0;
}

std::int64_t IncrementalCompletion::combine(
    const std::vector<std::int64_t>& comm_times,
    const std::vector<std::int64_t>& exec_times) const {
  if (graph_.phase_expr().kind == PhaseTree::Kind::Idle) {
    // Static fallback, mirroring completion_time(): every phase once.
    std::int64_t total = 0;
    for (const std::int64_t t : comm_times) {
      total += t;
    }
    for (const std::int64_t t : exec_times) {
      total += t;
    }
    return total;
  }
  return walk(graph_.phase_expr(), comm_times, exec_times);
}

std::int64_t IncrementalCompletion::delta_move(int task, int to_proc) const {
  OREGAMI_ASSERT(task >= 0 && task < graph_.num_tasks(),
                 "task out of range");
  OREGAMI_ASSERT(to_proc >= 0 && to_proc < topo_.num_procs(),
                 "processor out of range");
  const int from = proc_of_task_[static_cast<std::size_t>(task)];
  if (from == to_proc) {
    return 0;
  }

  probe_exec_times_ = exec_times_;
  for (std::size_t k = 0; k < exec_.size(); ++k) {
    const std::int64_t c =
        cost_of(graph_.exec_phases()[k], task);
    if (c == 0) {
      continue;
    }
    const auto& state = exec_[k];
    const std::int64_t from_load =
        state.load[static_cast<std::size_t>(from)];
    // What remains after `from` gives up c: if `from` was the unique
    // max holder the runner-up takes over, otherwise the max stands.
    const std::int64_t base =
        (from_load == state.max && state.count_at_max == 1) ? state.second
                                                            : state.max;
    probe_exec_times_[k] =
        std::max({base, from_load - c,
                  state.load[static_cast<std::size_t>(to_proc)] + c});
  }

  probe_comm_times_ = comm_times_;
  const auto& incident = incident_[static_cast<std::size_t>(task)];
  for (std::size_t start = 0; start < incident.size();) {
    const int k = incident[start].phase;
    std::size_t stop = start;
    while (stop < incident.size() && incident[stop].phase == k) {
      ++stop;
    }
    const auto& state = comm_[static_cast<std::size_t>(k)];
    const auto& phase = graph_.comm_phases()[static_cast<std::size_t>(k)];

    touched_links_.clear();
    hops_scratch_.assign(state.hops_hist.begin(), state.hops_hist.end());
    // touched_links_ may hold duplicates when a link's delta crosses
    // zero; harmless (reads and cleanup are idempotent).
    auto touch = [&](int link, std::int64_t delta) {
      auto& cell = link_delta_[static_cast<std::size_t>(link)];
      if (cell == 0) {
        touched_links_.push_back(link);
      }
      cell += delta;
    };
    for (std::size_t j = start; j < stop; ++j) {
      const int i = incident[j].edge;
      const auto& edge = phase.edges[static_cast<std::size_t>(i)];
      const auto& old_route =
          routing_[static_cast<std::size_t>(k)]
              .route_of_edge[static_cast<std::size_t>(i)];
      for (const int link : old_route.links) {
        touch(link, -edge.volume * link_weight(link));
      }
      --hops_scratch_[static_cast<std::size_t>(
          hop_bucket(old_route.hops()))];
      const int src_task = edge.src;
      const int dst_task = edge.dst;
      const int src =
          src_task == task
              ? to_proc
              : proc_of_task_[static_cast<std::size_t>(src_task)];
      const int dst =
          dst_task == task
              ? to_proc
              : proc_of_task_[static_cast<std::size_t>(dst_task)];
      // Allocation-free replay of greedy_shortest_route: at each step
      // the lowest-numbered neighbour one hop closer to dst (the same
      // choice next_hop_choices' sort-then-front makes), with the link
      // id read straight off the adjacency entry.
      int new_hops = 0;
      if (src != dst) {
        const DistanceRow dist = topo_.distance_row(dst);
        int current = src;
        while (current != dst) {
          const int here = dist[current];
          int next = -1;
          int next_link = -1;
          for (const auto& a : topo_.graph().neighbors(current)) {
            if (dist[a.neighbor] == here - 1 &&
                (next == -1 || a.neighbor < next)) {
              next = a.neighbor;
              next_link = a.edge_id;
            }
          }
          OREGAMI_ASSERT(next != -1, "destination must be reachable");
          touch(next_link, edge.volume * link_weight(next_link));
          ++new_hops;
          current = next;
        }
      }
      const int hb = hop_bucket(new_hops);
      if (static_cast<int>(hops_scratch_.size()) <= hb) {
        hops_scratch_.resize(static_cast<std::size_t>(hb) + 1, 0);
      }
      ++hops_scratch_[static_cast<std::size_t>(hb)];
    }

    int new_max_hops = 0;
    for (std::size_t h = hops_scratch_.size(); h-- > 0;) {
      if (hops_scratch_[h] > 0) {
        new_max_hops = static_cast<int>(h);
        break;
      }
    }

    // If some link currently at max_volume is untouched, the old max
    // still stands as a floor and only touched links can exceed it.
    // Otherwise (every max holder was touched) rescan the phase.
    bool max_holder_touched = false;
    for (const int link : touched_links_) {
      if (state.volume[static_cast<std::size_t>(link)] ==
          state.max_volume) {
        max_holder_touched = true;
        break;
      }
    }
    std::int64_t new_max_volume = 0;
    if (max_holder_touched) {
      // The move disturbed (at least) one bottleneck link, so the old
      // max no longer bounds the answer from below. Rescan: O(L), rare
      // in practice (only when the moving task's routes crossed the
      // bottleneck link).
      for (std::size_t l = 0; l < state.volume.size(); ++l) {
        new_max_volume =
            std::max(new_max_volume, state.volume[l] + link_delta_[l]);
      }
    } else {
      new_max_volume = state.max_volume;
      for (const int link : touched_links_) {
        new_max_volume = std::max(
            new_max_volume, state.volume[static_cast<std::size_t>(link)] +
                                link_delta_[static_cast<std::size_t>(link)]);
      }
    }

    for (const int link : touched_links_) {
      link_delta_[static_cast<std::size_t>(link)] = 0;
    }

    probe_comm_times_[static_cast<std::size_t>(k)] =
        new_max_volume * model_.per_unit_cost +
        static_cast<std::int64_t>(new_max_hops) * model_.hop_latency;
    start = stop;
  }

  return combine(probe_comm_times_, probe_exec_times_) - completion_;
}

void IncrementalCompletion::place_task(
    int task, int to_proc, const std::vector<Route>* forced_routes) {
  const int from = proc_of_task_[static_cast<std::size_t>(task)];
  for (std::size_t k = 0; k < exec_.size(); ++k) {
    const std::int64_t c = cost_of(graph_.exec_phases()[k], task);
    if (c == 0) {
      continue;
    }
    auto& state = exec_[k];
    state.load[static_cast<std::size_t>(from)] -= c;
    state.load[static_cast<std::size_t>(to_proc)] += c;
    rebuild_exec_tracker(state);
    exec_times_[k] = state.max;
  }

  proc_of_task_[static_cast<std::size_t>(task)] = to_proc;

  const auto& incident = incident_[static_cast<std::size_t>(task)];
  for (std::size_t j = 0; j < incident.size(); ++j) {
    const int k = incident[j].phase;
    const int i = incident[j].edge;
    auto& state = comm_[static_cast<std::size_t>(k)];
    const auto& edge = graph_.comm_phases()[static_cast<std::size_t>(k)]
                           .edges[static_cast<std::size_t>(i)];
    Route& slot = routing_[static_cast<std::size_t>(k)]
                      .route_of_edge[static_cast<std::size_t>(i)];
    for (const int link : slot.links) {
      state.volume[static_cast<std::size_t>(link)] -=
          edge.volume * link_weight(link);
    }
    --state.hops_hist[static_cast<std::size_t>(hop_bucket(slot.hops()))];
    slot = forced_routes != nullptr ? (*forced_routes)[j]
                                    : route_for(k, i);
    for (const int link : slot.links) {
      state.volume[static_cast<std::size_t>(link)] +=
          edge.volume * link_weight(link);
    }
    const int hb = hop_bucket(slot.hops());
    if (static_cast<int>(state.hops_hist.size()) <= hb) {
      state.hops_hist.resize(static_cast<std::size_t>(hb) + 1, 0);
    }
    ++state.hops_hist[static_cast<std::size_t>(hb)];
  }
  // Refresh the maxima of each affected phase exactly once.
  for (std::size_t j = 0; j < incident.size(); ++j) {
    if (j > 0 && incident[j].phase == incident[j - 1].phase) {
      continue;
    }
    auto& state = comm_[static_cast<std::size_t>(incident[j].phase)];
    rebuild_comm_maxima(state);
    comm_times_[static_cast<std::size_t>(incident[j].phase)] =
        comm_time_of(state);
  }

  completion_ = combine(comm_times_, exec_times_);
}

std::int64_t IncrementalCompletion::apply_move(int task, int to_proc) {
  OREGAMI_ASSERT(task >= 0 && task < graph_.num_tasks(),
                 "task out of range");
  OREGAMI_ASSERT(to_proc >= 0 && to_proc < topo_.num_procs(),
                 "processor out of range");
  const int from = proc_of_task_[static_cast<std::size_t>(task)];
  if (from == to_proc) {
    return 0;
  }
  UndoRecord rec;
  rec.task = task;
  rec.from_proc = from;
  rec.old_completion = completion_;
  const auto& incident = incident_[static_cast<std::size_t>(task)];
  rec.old_routes.reserve(incident.size());
  for (const auto& ref : incident) {
    rec.old_routes.push_back(
        routing_[static_cast<std::size_t>(ref.phase)]
            .route_of_edge[static_cast<std::size_t>(ref.edge)]);
  }
  place_task(task, to_proc, nullptr);
  history_.push_back(std::move(rec));
  return completion_ - history_.back().old_completion;
}

bool IncrementalCompletion::undo() {
  if (history_.empty()) {
    return false;
  }
  UndoRecord rec = std::move(history_.back());
  history_.pop_back();
  place_task(rec.task, rec.from_proc, &rec.old_routes);
  OREGAMI_ASSERT(completion_ == rec.old_completion,
                 "undo must restore the exact completion time");
  return true;
}

}  // namespace oregami
