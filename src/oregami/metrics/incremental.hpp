// Incremental completion-model scoring (the mapper hot path).
//
// completion_time() walks every comm edge and every task on every
// call; a refinement sweep that probes "what if task t moved to
// processor q" thousands of times cannot afford that. This evaluator
// caches, per phase, the per-processor execution loads and per-link
// communication volumes (plus max trackers and a hop histogram), so a
// single-task move is scored from the caches:
//
//   * delta_move(t, q)  -- O(1) per exec phase via (max, count, second)
//     trackers, O(links + incident routes) per affected comm phase;
//     no allocation in the steady state; pure probe, no state change;
//   * apply_move(t, q)  -- commits the move, greedily re-routing the
//     edges incident to t (same rule as MetricsSession::move_task) and
//     refreshing the caches;
//   * undo()            -- exact restoration of the previous placement,
//     routes, caches, and completion time.
//
// Invariants (when caches must be rebuilt): the evaluator owns its
// placement + routing copies, so they can only drift from the caches
// through apply_move/undo, which maintain them. Mutating the TaskGraph,
// Topology, or CostModel it references invalidates the evaluator;
// construct a fresh one. An instance is not thread-safe (probes use
// internal scratch); give each thread its own.
#pragma once

#include <cstdint>
#include <vector>

#include "oregami/metrics/completion_model.hpp"

namespace oregami {

/// Read-only view of one comm phase's tracked state, for observability
/// consumers (trace counters, --explain, bench counter snapshots).
struct CommPhaseSnapshot {
  std::int64_t max_volume = 0;    ///< weighted serialised bottleneck
  std::int64_t total_volume = 0;  ///< summed weighted volume over links
  int used_links = 0;             ///< links carrying any volume
  int max_hops = 0;               ///< longest route
  std::vector<int> hops_hist;     ///< routes per hop count
};

class IncrementalCompletion {
 public:
  /// Hop-histogram bucket cap: bucket h counts routes of exactly h
  /// hops for h < kHopHistCap - 1; the final bucket aggregates every
  /// longer route, and max_hops saturates there. Exact for any
  /// topology whose diameter is below the cap — i.e. every built-in
  /// regular family up to ~half a million processors (a torus needs
  /// 1024x1024 before a shortest route reaches 1024 hops).
  ///
  /// Memory bound (exact, the reason the cap exists): per comm phase
  /// the evaluator keeps one 64-bit counter per link plus at most
  /// kHopHistCap histogram buckets; per exec phase one 64-bit load per
  /// processor; plus the incident-edge index. Total resident state is
  ///   O(K_comm * (num_links + kHopHistCap) + K_exec * num_procs
  ///     + num_tasks + total_comm_edges)
  /// — linear in the machine and the graph, no P^2 term, independent
  /// of route lengths. On torus:64x64 (P = 4096, L = 8192) a comm
  /// phase costs 64 KiB of link counters + at most 8 KiB of histogram.
  /// Probe scratch is one O(num_links) dense array (zeroed after each
  /// probe) plus vectors linear in the links a move actually touches.
  static constexpr int kHopHistCap = 1024;

  /// Takes ownership of a task-level placement and its routing (e.g.
  /// Mapping::proc_of_task() + Mapping::routing). Requires every comm
  /// volume and exec cost to be non-negative (the cost model's domain).
  ///
  /// `link_factor` (optional) is a per-link serialisation multiplier
  /// (index = link id in `topo`, every entry >= 1; empty means all 1):
  /// a link's volume contribution is weighted by its factor, so the
  /// phase bottleneck is max over links of (volume * factor). This is
  /// how degraded-mode scoring charges slowed links their real cost
  /// (see FaultedTopology::faulted_link_factors()).
  IncrementalCompletion(const TaskGraph& graph, const Topology& topo,
                        std::vector<int> proc_of_task,
                        std::vector<PhaseRouting> routing,
                        CostModel model = {},
                        std::vector<std::int64_t> link_factor = {});

  /// Convenience: start from a MAPPER-produced mapping.
  IncrementalCompletion(const TaskGraph& graph, const Topology& topo,
                        const Mapping& mapping, CostModel model = {},
                        std::vector<std::int64_t> link_factor = {});

  [[nodiscard]] std::int64_t completion() const { return completion_; }
  [[nodiscard]] const std::vector<int>& proc_of_task() const {
    return proc_of_task_;
  }
  [[nodiscard]] const std::vector<PhaseRouting>& routing() const {
    return routing_;
  }

  /// Completion-time change if `task` moved to `to_proc` (incident
  /// edges re-routed greedily). Negative = improvement. Probe only.
  [[nodiscard]] std::int64_t delta_move(int task, int to_proc) const;

  /// Commits the move probed by delta_move; returns the realised delta
  /// (always equal to the probe's answer). Moving a task to its own
  /// processor is a no-op returning 0 (and records no history).
  std::int64_t apply_move(int task, int to_proc);

  /// Reverts the most recent apply_move; false when nothing to undo.
  bool undo();

  [[nodiscard]] std::size_t history_size() const {
    return history_.size();
  }

  /// Snapshot of comm phase `phase`'s per-link volumes and hop
  /// histogram (the trackers delta_move maintains). O(links).
  [[nodiscard]] CommPhaseSnapshot comm_snapshot(int phase) const;

  /// Max per-processor load of exec phase `phase` (the phase's
  /// modelled time).
  [[nodiscard]] std::int64_t exec_max_load(int phase) const;

  /// Emits the per-phase trackers as trace counters under the current
  /// span: for each comm phase "<name>/max_link_volume",
  /// "/total_volume", "/used_links", "/max_hops" and one "hops=<h>"
  /// bucket per histogram entry; for each exec phase "/max_load".
  /// No-op when tracing is disabled.
  void trace_phase_counters() const;

 private:
  struct ExecState {
    std::vector<std::int64_t> load;  ///< per processor
    std::int64_t max = 0;
    int count_at_max = 0;
    std::int64_t second = 0;  ///< largest load strictly below max
  };
  struct CommState {
    std::vector<std::int64_t> volume;  ///< per link
    std::vector<int> hops_hist;        ///< routes per hop count
    std::int64_t max_volume = 0;
    int max_hops = 0;
  };
  struct EdgeRef {
    int phase = 0;
    int edge = 0;
  };
  struct UndoRecord {
    int task = 0;
    int from_proc = 0;
    std::vector<Route> old_routes;  ///< parallel to incident_[task]
    std::int64_t old_completion = 0;
  };

  void rebuild_exec_tracker(ExecState& state) const;
  void rebuild_comm_maxima(CommState& state) const;
  [[nodiscard]] Route route_for(int phase, int edge) const;
  [[nodiscard]] std::int64_t comm_time_of(const CommState& state) const;
  [[nodiscard]] std::int64_t combine(
      const std::vector<std::int64_t>& comm_times,
      const std::vector<std::int64_t>& exec_times) const;
  [[nodiscard]] std::int64_t walk(
      const PhaseTree& node, const std::vector<std::int64_t>& comm_times,
      const std::vector<std::int64_t>& exec_times) const;
  void place_task(int task, int to_proc,
                  const std::vector<Route>* forced_routes);

  /// Histogram index of a route length under the kHopHistCap bucket
  /// scheme. Used symmetrically on increment and decrement, so
  /// apply/undo round-trips stay exact even in the saturated bucket.
  [[nodiscard]] static int hop_bucket(int hops) {
    return hops < kHopHistCap ? hops : kHopHistCap - 1;
  }

  [[nodiscard]] std::int64_t link_weight(int link) const {
    return link_factor_.empty()
               ? 1
               : link_factor_[static_cast<std::size_t>(link)];
  }

  const TaskGraph& graph_;
  const Topology& topo_;
  CostModel model_;
  std::vector<int> proc_of_task_;
  std::vector<PhaseRouting> routing_;
  std::vector<std::int64_t> link_factor_;  ///< empty = all links factor 1

  std::vector<ExecState> exec_;
  std::vector<CommState> comm_;
  std::vector<std::int64_t> exec_times_;
  std::vector<std::int64_t> comm_times_;
  std::int64_t completion_ = 0;
  /// Per task: its comm edges (grouped by ascending phase).
  std::vector<std::vector<EdgeRef>> incident_;
  std::vector<UndoRecord> history_;

  // Probe scratch (mutable: delta_move is logically const). Reused
  // across probes so the steady state allocates nothing.
  mutable std::vector<std::int64_t> probe_comm_times_;
  mutable std::vector<std::int64_t> probe_exec_times_;
  mutable std::vector<std::int64_t> link_delta_;  ///< dense, zeroed after use
  mutable std::vector<int> touched_links_;
  mutable std::vector<int> hops_scratch_;
};

}  // namespace oregami
