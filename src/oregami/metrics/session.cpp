#include "oregami/metrics/session.hpp"

#include "oregami/arch/routes.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

MetricsSession::MetricsSession(const TaskGraph& graph, const Topology& topo,
                               const Mapping& mapping, CostModel model)
    : graph_(graph),
      topo_(topo),
      model_(model),
      proc_of_task_(mapping.proc_of_task()),
      routing_(mapping.routing) {
  recompute_metrics();
}

void MetricsSession::recompute_metrics() {
  metrics_ = compute_metrics(graph_, proc_of_task_, routing_, topo_,
                             model_);
}

void MetricsSession::reroute_task_edges(int task) {
  for (std::size_t k = 0; k < graph_.comm_phases().size(); ++k) {
    const auto& phase = graph_.comm_phases()[k];
    for (std::size_t i = 0; i < phase.edges.size(); ++i) {
      const auto& e = phase.edges[i];
      if (e.src != task && e.dst != task) {
        continue;
      }
      const int src = proc_of_task_[static_cast<std::size_t>(e.src)];
      const int dst = proc_of_task_[static_cast<std::size_t>(e.dst)];
      routing_[k].route_of_edge[i] =
          src == dst ? Route{{src}, {}} : greedy_shortest_route(topo_, src, dst);
    }
  }
}

EditReport MetricsSession::move_task(int task, int proc) {
  if (task < 0 || task >= graph_.num_tasks()) {
    throw MappingError("move_task: task id out of range");
  }
  if (proc < 0 || proc >= topo_.num_procs()) {
    throw MappingError("move_task: processor id out of range");
  }
  EditReport report;
  report.before = metrics_;
  history_.push_back({proc_of_task_, routing_, metrics_});
  proc_of_task_[static_cast<std::size_t>(task)] = proc;
  reroute_task_edges(task);
  recompute_metrics();
  report.after = metrics_;
  return report;
}

EditReport MetricsSession::reroute_edge(int phase_index, int edge_index,
                                        Route route) {
  if (phase_index < 0 ||
      static_cast<std::size_t>(phase_index) >=
          graph_.comm_phases().size()) {
    throw MappingError("reroute_edge: phase index out of range");
  }
  const auto& phase =
      graph_.comm_phases()[static_cast<std::size_t>(phase_index)];
  if (edge_index < 0 ||
      static_cast<std::size_t>(edge_index) >= phase.edges.size()) {
    throw MappingError("reroute_edge: edge index out of range");
  }
  const auto& e = phase.edges[static_cast<std::size_t>(edge_index)];
  const int src = proc_of_task_[static_cast<std::size_t>(e.src)];
  const int dst = proc_of_task_[static_cast<std::size_t>(e.dst)];
  if (!is_valid_route(topo_, route, src, dst)) {
    throw MappingError(
        "reroute_edge: route is not a valid walk between the edge's "
        "processors");
  }
  EditReport report;
  report.before = metrics_;
  history_.push_back({proc_of_task_, routing_, metrics_});
  routing_[static_cast<std::size_t>(phase_index)]
      .route_of_edge[static_cast<std::size_t>(edge_index)] =
      std::move(route);
  recompute_metrics();
  report.after = metrics_;
  return report;
}

EditReport MetricsSession::apply_repair(const RepairResult& repair) {
  std::vector<int> proc = repair.mapping.proc_of_task();
  if (proc.size() != proc_of_task_.size() ||
      repair.mapping.routing.size() != routing_.size()) {
    throw MappingError(
        "apply_repair: repaired mapping does not match this session's "
        "graph");
  }
  EditReport report;
  report.before = metrics_;
  history_.push_back({proc_of_task_, routing_, metrics_});
  proc_of_task_ = std::move(proc);
  routing_ = repair.mapping.routing;
  recompute_metrics();
  report.after = metrics_;
  return report;
}

bool MetricsSession::undo() {
  if (history_.empty()) {
    return false;
  }
  Snapshot snapshot = std::move(history_.back());
  history_.pop_back();
  proc_of_task_ = std::move(snapshot.proc_of_task);
  routing_ = std::move(snapshot.routing);
  metrics_ = std::move(snapshot.metrics);
  return true;
}

}  // namespace oregami
