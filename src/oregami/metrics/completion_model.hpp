// The analytic communication/computation cost model behind METRICS'
// "completion time of the computation" (paper §5).
//
// OREGAMI never executes the program; like the original METRICS tool it
// scores a mapping with a model:
//   * an execution phase costs the maximum, over processors, of the
//     summed task costs assigned there (processors run in parallel);
//   * a communication phase is synchronous: its cost is the maximum
//     volume serialised through any one link (contention x volume x
//     per-unit cost) plus the longest route's hop latency;
//   * the phase expression composes phases: sequence adds, parallel
//     takes the maximum, repetition multiplies.
#pragma once

#include <cstdint>

#include "oregami/arch/fault_model.hpp"
#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"

namespace oregami {

struct CostModel {
  std::int64_t hop_latency = 1;    ///< per-hop switching cost
  std::int64_t per_unit_cost = 1;  ///< per volume unit per link
};

/// Cost of comm phase `phase_index` under `routing` (that phase's
/// routes): max over links of serialised volume + latency of the
/// longest route.
[[nodiscard]] std::int64_t comm_phase_time(const TaskGraph& graph,
                                           int phase_index,
                                           const PhaseRouting& routing,
                                           const Topology& topo,
                                           const CostModel& model);

/// Cost of exec phase `phase_index`: max over processors of assigned
/// task cost.
[[nodiscard]] std::int64_t exec_phase_time(
    const TaskGraph& graph, int phase_index,
    const std::vector<int>& proc_of_task, int num_procs);

/// Walks the phase expression. When the graph has no phase expression
/// (Idle), falls back to the sum of every phase executed once.
[[nodiscard]] std::int64_t completion_time(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const std::vector<PhaseRouting>& routing, const Topology& topo,
    const CostModel& model = {});

/// The three objectives the portfolio's Pareto report ranks a placement
/// on. All are minimised; all are exact model quantities, so extraction
/// is deterministic.
struct PlacementObjectives {
  /// Modelled completion time (completion_time()).
  std::int64_t completion = 0;
  /// Multiplicity-weighted communication volume crossing processor
  /// boundaries (the METRICS total-IPC headline).
  std::int64_t external_ipc = 0;
  /// Maximum per-processor execution load, multiplicity-weighted and
  /// summed over every exec phase (the load-balance objective).
  std::int64_t max_load = 0;
};

/// Extracts all three objectives of a placement in one pass (shared by
/// portfolio scoring and the Pareto report).
[[nodiscard]] PlacementObjectives extract_objectives(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const std::vector<PhaseRouting>& routing, const Topology& topo,
    const CostModel& model = {});

/// completion_time() on the degraded machine: each link's serialised
/// volume is multiplied by its slowdown factor, so the phase bottleneck
/// is max over links of (volume * factor). Routes and placement are in
/// BASE ids; throws MappingError when a task sits on a dead processor
/// or a route crosses a dead link/processor (the mapping is invalid on
/// the faulted machine -- repair it first). With an empty FaultSpec
/// this equals completion_time() exactly.
[[nodiscard]] std::int64_t degraded_completion_time(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const std::vector<PhaseRouting>& routing, const FaultedTopology& faults,
    const CostModel& model = {});

}  // namespace oregami
