// The METRICS analysis suite (paper §5): load-balancing metrics (tasks
// per processor, execution time per processor), link metrics (dilation,
// volume, per-phase contention), and overall metrics (completion time,
// total inter-processor communication).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"
#include "oregami/core/task_graph.hpp"
#include "oregami/metrics/completion_model.hpp"

namespace oregami {

struct LoadMetrics {
  std::vector<int> tasks_per_proc;
  std::vector<std::int64_t> exec_per_proc;  ///< phase-multiplicity weighted

  int max_tasks = 0;
  double avg_tasks = 0.0;
  std::int64_t max_exec = 0;
  /// max/avg over non-idle processors; 1.0 = perfectly balanced.
  double exec_imbalance = 0.0;
};

struct PhaseLinkMetrics {
  std::string phase_name;
  std::vector<int> contention_per_link;        ///< routes crossing link
  std::vector<std::int64_t> volume_per_link;   ///< volume through link
  int max_contention = 0;
  double avg_contention = 0.0;  ///< over links used by the phase
  int max_dilation = 0;
  double avg_dilation = 0.0;  ///< over the phase's edges
  std::int64_t phase_time = 0;
};

struct MappingMetrics {
  LoadMetrics load;
  std::vector<PhaseLinkMetrics> phases;

  /// Volume crossing processor boundaries (counted once per edge,
  /// multiplicity-weighted).
  std::int64_t total_ipc = 0;
  double avg_dilation = 0.0;  ///< over all comm edges of all phases
  int max_dilation = 0;
  std::int64_t completion = 0;  ///< completion_time() under `model`
};

/// Computes the full metric suite for a task-level placement +
/// routing. `proc_of_task` and `routing` may come from a Mapping
/// (Mapping::proc_of_task()) or from a MetricsSession edit state.
[[nodiscard]] MappingMetrics compute_metrics(
    const TaskGraph& graph, const std::vector<int>& proc_of_task,
    const std::vector<PhaseRouting>& routing, const Topology& topo,
    const CostModel& model = {});

/// Convenience overload for a Mapping.
[[nodiscard]] MappingMetrics compute_metrics(const TaskGraph& graph,
                                             const Mapping& mapping,
                                             const Topology& topo,
                                             const CostModel& model = {});

}  // namespace oregami
