#include "oregami/group/cayley.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "oregami/support/error.hpp"

namespace oregami {

CayleyGraph cayley_graph(const PermutationGroup& group) {
  CayleyGraph cg;
  cg.num_nodes = static_cast<int>(group.order());
  const auto& gens = group.generator_indices();
  for (std::size_t a = 0; a < group.order(); ++a) {
    for (std::size_t gi = 0; gi < gens.size(); ++gi) {
      const std::size_t b = group.compose(a, gens[gi]);
      cg.edges.push_back({static_cast<int>(a), static_cast<int>(b),
                          static_cast<int>(gi)});
    }
  }
  return cg;
}

CayleyGraph quotient_cayley_graph(const PermutationGroup& group,
                                  const std::vector<int>& coset_of) {
  OREGAMI_ASSERT(coset_of.size() == group.order(),
                 "coset partition size must equal group order");
  CayleyGraph cg;
  cg.num_nodes =
      coset_of.empty()
          ? 0
          : *std::max_element(coset_of.begin(), coset_of.end()) + 1;
  std::set<std::tuple<int, int, int>> seen;
  const auto& gens = group.generator_indices();
  for (std::size_t a = 0; a < group.order(); ++a) {
    for (std::size_t gi = 0; gi < gens.size(); ++gi) {
      const std::size_t b = group.compose(a, gens[gi]);
      const int ca = coset_of[a];
      const int cb = coset_of[b];
      if (seen.insert({ca, cb, static_cast<int>(gi)}).second) {
        cg.edges.push_back({ca, cb, static_cast<int>(gi)});
      }
    }
  }
  return cg;
}

}  // namespace oregami
