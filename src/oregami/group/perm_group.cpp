#include "oregami/group/perm_group.hpp"

#include <algorithm>
#include <set>

#include "oregami/support/error.hpp"

namespace oregami {

PermutationGroup::PermutationGroup(
    int degree, std::vector<Permutation> elements,
    std::vector<std::size_t> generator_indices)
    : degree_(degree),
      elements_(std::move(elements)),
      generator_indices_(std::move(generator_indices)) {}

std::optional<PermutationGroup> PermutationGroup::generate(
    const std::vector<Permutation>& generators, std::size_t max_order) {
  OREGAMI_ASSERT(!generators.empty(), "group needs at least one generator");
  const int degree = generators.front().degree();
  for (const auto& g : generators) {
    OREGAMI_ASSERT(g.degree() == degree,
                   "all generators must share one degree");
  }

  // BFS closure over right multiplication by generators.
  std::set<Permutation> closed;
  std::vector<Permutation> frontier;
  closed.insert(Permutation::identity(degree));
  frontier.push_back(Permutation::identity(degree));
  while (!frontier.empty()) {
    std::vector<Permutation> next;
    for (const auto& e : frontier) {
      for (const auto& g : generators) {
        Permutation candidate = e.then(g);
        if (closed.insert(candidate).second) {
          if (closed.size() > max_order) {
            return std::nullopt;  // paper's early abort: |G| > cutoff
          }
          next.push_back(std::move(candidate));
        }
      }
    }
    frontier = std::move(next);
  }

  std::vector<Permutation> elements(closed.begin(), closed.end());
  // std::set orders lexicographically by image table, so the identity
  // (0,1,2,...) is first only if no element maps 0 below... it is the
  // minimum: any other permutation's image differs and the identity's
  // table (0,1,...,n-1) is lexicographically minimal among bijections
  // that fix nothing smaller. That is not true in general (e.g. image
  // (0,2,1) > identity, but (0,1,...) is minimal since any bijection's
  // first differing position holds a larger value). Assert it.
  OREGAMI_ASSERT(elements.front().is_identity(),
                 "identity must sort first among group elements");

  std::vector<std::size_t> gen_idx;
  for (const auto& g : generators) {
    const auto it = std::lower_bound(elements.begin(), elements.end(), g);
    OREGAMI_ASSERT(it != elements.end() && *it == g,
                   "generator missing from its own closure");
    gen_idx.push_back(static_cast<std::size_t>(it - elements.begin()));
  }
  return PermutationGroup(degree, std::move(elements), std::move(gen_idx));
}

std::optional<std::size_t> PermutationGroup::index_of(
    const Permutation& p) const {
  const auto it = std::lower_bound(elements_.begin(), elements_.end(), p);
  if (it != elements_.end() && *it == p) {
    return static_cast<std::size_t>(it - elements_.begin());
  }
  return std::nullopt;
}

std::size_t PermutationGroup::compose(std::size_t a, std::size_t b) const {
  const auto idx = index_of(elements_[a].then(elements_[b]));
  OREGAMI_ASSERT(idx.has_value(), "group not closed under composition");
  return *idx;
}

std::size_t PermutationGroup::inverse(std::size_t a) const {
  const auto idx = index_of(elements_[a].inverse());
  OREGAMI_ASSERT(idx.has_value(), "group not closed under inversion");
  return *idx;
}

bool PermutationGroup::is_transitive() const {
  if (degree_ == 0) {
    return true;
  }
  std::vector<bool> reached(static_cast<std::size_t>(degree_), false);
  int count = 0;
  for (const auto& e : elements_) {
    const int y = e(0);
    if (!reached[static_cast<std::size_t>(y)]) {
      reached[static_cast<std::size_t>(y)] = true;
      ++count;
    }
  }
  return count == degree_;
}

bool PermutationGroup::acts_regularly() const {
  if (order() != static_cast<std::size_t>(degree_)) {
    return false;
  }
  if (!is_transitive()) {
    return false;
  }
  return std::all_of(elements_.begin(), elements_.end(),
                     [](const Permutation& e) {
                       return e.has_uniform_cycle_length();
                     });
}

std::size_t PermutationGroup::element_mapping_base_to(int x) const {
  OREGAMI_ASSERT(x >= 0 && x < degree_, "point out of range");
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i](0) == x) {
      return i;
    }
  }
  OREGAMI_ASSERT(false, "regular action must reach every point from 0");
  return 0;
}

std::vector<std::size_t> PermutationGroup::cyclic_subgroup(
    std::size_t a) const {
  std::vector<std::size_t> members{0};  // identity
  std::size_t current = a;
  while (current != 0) {
    members.push_back(current);
    current = compose(current, a);
  }
  std::sort(members.begin(), members.end());
  return members;
}

std::vector<std::size_t> PermutationGroup::subgroup_closure(
    std::vector<std::size_t> seed) const {
  std::set<std::size_t> closed(seed.begin(), seed.end());
  closed.insert(0);
  std::vector<std::size_t> frontier(closed.begin(), closed.end());
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t e : frontier) {
      for (const std::size_t s : seed) {
        for (const std::size_t candidate :
             {compose(e, s), compose(e, inverse(s))}) {
          if (closed.insert(candidate).second) {
            next.push_back(candidate);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return {closed.begin(), closed.end()};
}

bool PermutationGroup::is_normal(
    const std::vector<std::size_t>& subgroup) const {
  for (std::size_t g = 0; g < order(); ++g) {
    const std::size_t g_inv = inverse(g);
    for (const std::size_t h : subgroup) {
      const std::size_t conj = compose(compose(g_inv, h), g);
      if (!std::binary_search(subgroup.begin(), subgroup.end(), conj)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<int> PermutationGroup::right_cosets(
    const std::vector<std::size_t>& subgroup) const {
  std::vector<int> coset_of(order(), -1);
  int next_id = 0;
  for (std::size_t g = 0; g < order(); ++g) {
    if (coset_of[g] != -1) {
      continue;
    }
    // Coset H*g: identity is elements_[0], subgroup indices are h.
    for (const std::size_t h : subgroup) {
      const std::size_t member = compose(h, g);
      OREGAMI_ASSERT(coset_of[member] == -1 || coset_of[member] == next_id,
                     "cosets must partition the group");
      coset_of[member] = next_id;
    }
    ++next_id;
  }
  return coset_of;
}

std::vector<std::vector<std::size_t>> PermutationGroup::cyclic_subgroups()
    const {
  std::set<std::vector<std::size_t>> distinct;
  for (std::size_t a = 0; a < order(); ++a) {
    distinct.insert(cyclic_subgroup(a));
  }
  std::vector<std::vector<std::size_t>> result(distinct.begin(),
                                               distinct.end());
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) {
                return a.size() < b.size();
              }
              return a < b;
            });
  return result;
}

std::vector<std::vector<std::size_t>> PermutationGroup::all_subgroups(
    int max_generators) const {
  OREGAMI_ASSERT(order() <= 64,
                 "all_subgroups is guarded to small groups (|G| <= 64)");
  std::set<std::vector<std::size_t>> distinct;
  distinct.insert({0});
  for (std::size_t a = 0; a < order(); ++a) {
    distinct.insert(cyclic_subgroup(a));
  }
  if (max_generators >= 2) {
    for (std::size_t a = 1; a < order(); ++a) {
      for (std::size_t b = a + 1; b < order(); ++b) {
        distinct.insert(subgroup_closure({a, b}));
      }
    }
  }
  std::vector<std::vector<std::size_t>> result(distinct.begin(),
                                               distinct.end());
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) {
                return a.size() < b.size();
              }
              return a < b;
            });
  return result;
}

}  // namespace oregami
