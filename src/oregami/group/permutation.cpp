#include "oregami/group/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "oregami/support/error.hpp"

namespace oregami {

Permutation Permutation::identity(int n) {
  OREGAMI_ASSERT(n >= 0, "permutation degree must be non-negative");
  std::vector<int> image(static_cast<std::size_t>(n));
  std::iota(image.begin(), image.end(), 0);
  return Permutation(std::move(image));
}

Permutation::Permutation(std::vector<int> image) : image_(std::move(image)) {
  std::vector<bool> seen(image_.size(), false);
  for (const int y : image_) {
    if (y < 0 || static_cast<std::size_t>(y) >= image_.size() ||
        seen[static_cast<std::size_t>(y)]) {
      throw MappingError("permutation image table is not a bijection");
    }
    seen[static_cast<std::size_t>(y)] = true;
  }
}

Permutation Permutation::from_cycles(int n, const std::string& cycles) {
  std::vector<int> image(static_cast<std::size_t>(n));
  std::iota(image.begin(), image.end(), 0);
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < cycles.size() &&
           (cycles[i] == ' ' || cycles[i] == ',' || cycles[i] == '\t')) {
      ++i;
    }
  };
  skip_ws();
  while (i < cycles.size()) {
    if (cycles[i] != '(') {
      throw MappingError("cycle notation: expected '('");
    }
    ++i;
    std::vector<int> cyc;
    skip_ws();
    while (i < cycles.size() && cycles[i] != ')') {
      if (!std::isdigit(static_cast<unsigned char>(cycles[i]))) {
        throw MappingError("cycle notation: expected digit");
      }
      int value = 0;
      while (i < cycles.size() &&
             std::isdigit(static_cast<unsigned char>(cycles[i]))) {
        value = value * 10 + (cycles[i] - '0');
        ++i;
      }
      if (value >= n) {
        throw MappingError("cycle notation: point out of range");
      }
      cyc.push_back(value);
      skip_ws();
    }
    if (i >= cycles.size()) {
      throw MappingError("cycle notation: unterminated cycle");
    }
    ++i;  // consume ')'
    for (std::size_t k = 0; k < cyc.size(); ++k) {
      const int from = cyc[k];
      const int to = cyc[(k + 1) % cyc.size()];
      image[static_cast<std::size_t>(from)] = to;
    }
    skip_ws();
  }
  return Permutation(std::move(image));
}

int Permutation::operator()(int x) const {
  OREGAMI_ASSERT(x >= 0 && x < degree(), "permutation point out of range");
  return image_[static_cast<std::size_t>(x)];
}

Permutation Permutation::then(const Permutation& b) const {
  OREGAMI_ASSERT(degree() == b.degree(),
                 "composition requires equal degrees");
  std::vector<int> image(image_.size());
  for (std::size_t x = 0; x < image_.size(); ++x) {
    image[x] = b.image_[static_cast<std::size_t>(image_[x])];
  }
  return Permutation(std::move(image));
}

Permutation Permutation::inverse() const {
  std::vector<int> image(image_.size());
  for (std::size_t x = 0; x < image_.size(); ++x) {
    image[static_cast<std::size_t>(image_[x])] = static_cast<int>(x);
  }
  return Permutation(std::move(image));
}

bool Permutation::is_identity() const {
  for (std::size_t x = 0; x < image_.size(); ++x) {
    if (image_[x] != static_cast<int>(x)) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<int>> Permutation::cycles() const {
  std::vector<std::vector<int>> result;
  std::vector<bool> seen(image_.size(), false);
  for (int start = 0; start < degree(); ++start) {
    if (seen[static_cast<std::size_t>(start)]) {
      continue;
    }
    std::vector<int> cyc;
    int x = start;
    do {
      seen[static_cast<std::size_t>(x)] = true;
      cyc.push_back(x);
      x = image_[static_cast<std::size_t>(x)];
    } while (x != start);
    result.push_back(std::move(cyc));
  }
  return result;
}

std::vector<int> Permutation::cycle_type() const {
  std::vector<int> lengths;
  for (const auto& cyc : cycles()) {
    lengths.push_back(static_cast<int>(cyc.size()));
  }
  std::sort(lengths.begin(), lengths.end());
  return lengths;
}

bool Permutation::has_uniform_cycle_length() const {
  const auto type = cycle_type();
  return type.empty() || type.front() == type.back();
}

long Permutation::order() const {
  long result = 1;
  for (const auto& cyc : cycles()) {
    result = std::lcm(result, static_cast<long>(cyc.size()));
  }
  return result;
}

std::string Permutation::to_cycle_string() const {
  std::string out;
  for (const auto& cyc : cycles()) {
    out += '(';
    for (std::size_t k = 0; k < cyc.size(); ++k) {
      if (k != 0) {
        out += ' ';
      }
      out += std::to_string(cyc[k]);
    }
    out += ')';
  }
  return out;
}

}  // namespace oregami
