// Permutations on {0, ..., n-1} with the cycle-notation machinery used
// by OREGAMI's group-theoretic contraction (paper §4.2.2).
//
// Composition convention follows the paper: left-to-right application,
// so (a * b)(x) = b(a(x)) -- "(123) composed with (13)(2) gives (12)(3)"
// per the paper's footnote 4.
#pragma once

#include <string>
#include <vector>

namespace oregami {

/// A permutation stored as its image table: image()[x] = where x maps.
class Permutation {
 public:
  /// The identity on n points.
  static Permutation identity(int n);

  /// From an image table; validates that it is a bijection.
  explicit Permutation(std::vector<int> image);

  /// Parses cycle notation like "(0 2 4 6)(1 3 5 7)" over n points;
  /// fixed points may be omitted. Throws MappingError on bad input.
  static Permutation from_cycles(int n, const std::string& cycles);

  [[nodiscard]] int degree() const {
    return static_cast<int>(image_.size());
  }

  /// Image of point x.
  [[nodiscard]] int operator()(int x) const;

  [[nodiscard]] const std::vector<int>& image() const { return image_; }

  /// Left-to-right composition: (a.then(b))(x) == b(a(x)).
  [[nodiscard]] Permutation then(const Permutation& b) const;

  [[nodiscard]] Permutation inverse() const;

  [[nodiscard]] bool is_identity() const;

  /// Cycle decomposition, each cycle starting at its smallest member,
  /// cycles ordered by that smallest member; includes fixed points as
  /// 1-cycles (the paper writes E0 = (0)(1)...(7)).
  [[nodiscard]] std::vector<std::vector<int>> cycles() const;

  /// Sorted multiset of cycle lengths, e.g. {4, 4} for (0246)(1357).
  [[nodiscard]] std::vector<int> cycle_type() const;

  /// True when every cycle has the same length (the regular-action
  /// criterion of §4.2.2 requires this of every group element).
  [[nodiscard]] bool has_uniform_cycle_length() const;

  /// Order of the permutation (lcm of cycle lengths).
  [[nodiscard]] long order() const;

  /// Cycle-notation rendering, "(0 1 2 3 4 5 6 7)" style, fixed points
  /// included to match the paper's display of E0..E7.
  [[nodiscard]] std::string to_cycle_string() const;

  friend bool operator==(const Permutation& a, const Permutation& b) {
    return a.image_ == b.image_;
  }
  friend auto operator<=>(const Permutation& a, const Permutation& b) {
    return a.image_ <=> b.image_;
  }

 private:
  std::vector<int> image_;
};

}  // namespace oregami
