#include "oregami/arch/fault_model.hpp"

#include <algorithm>
#include <utility>

#include "oregami/support/error.hpp"
#include "oregami/support/rng.hpp"

namespace oregami {

namespace {

[[noreturn]] void spec_fail(const std::string& message) {
  throw MappingError("fault spec: " + message);
}

/// Parses a non-negative integer out of text[pos..); advances pos.
long parse_number(const std::string& text, std::size_t& pos,
                  const std::string& token) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
    spec_fail("expected a number in token '" + token + "'");
  }
  long value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + (text[pos] - '0');
    if (value > 1'000'000'000L) {
      spec_fail("number out of range in token '" + token + "'");
    }
    ++pos;
  }
  return value;
}

int resolve_link(const Topology& topo, const std::string& token,
                 std::size_t& pos) {
  const long first = parse_number(token, pos, token);
  if (pos < token.size() && token[pos] == '-') {
    ++pos;
    const long second = parse_number(token, pos, token);
    if (first >= topo.num_procs() || second >= topo.num_procs()) {
      spec_fail("processor id out of range in token '" + token + "'");
    }
    const auto link = topo.link_between(static_cast<int>(first),
                                        static_cast<int>(second));
    if (!link) {
      spec_fail("processors " + std::to_string(first) + " and " +
                std::to_string(second) + " are not adjacent in " +
                topo.name() + " (token '" + token + "')");
    }
    return *link;
  }
  if (first >= topo.num_links()) {
    spec_fail("link id out of range in token '" + token + "' (" +
              topo.name() + " has " + std::to_string(topo.num_links()) +
              " links)");
  }
  return static_cast<int>(first);
}

}  // namespace

void FaultSpec::normalise() {
  std::sort(dead_procs.begin(), dead_procs.end());
  dead_procs.erase(std::unique(dead_procs.begin(), dead_procs.end()),
                   dead_procs.end());
  std::sort(dead_links.begin(), dead_links.end());
  dead_links.erase(std::unique(dead_links.begin(), dead_links.end()),
                   dead_links.end());
  std::sort(slow_links.begin(), slow_links.end(),
            [](const SlowLink& a, const SlowLink& b) {
              return a.link < b.link;
            });
  // Duplicate slowdowns on one link compound multiplicatively.
  std::vector<SlowLink> merged;
  for (const SlowLink& s : slow_links) {
    if (!merged.empty() && merged.back().link == s.link) {
      merged.back().factor *= s.factor;
    } else {
      merged.push_back(s);
    }
  }
  slow_links = std::move(merged);
}

void FaultSpec::validate(const Topology& topo) const {
  for (const int p : dead_procs) {
    if (p < 0 || p >= topo.num_procs()) {
      spec_fail("dead processor " + std::to_string(p) +
                " out of range for " + topo.name());
    }
  }
  for (const int l : dead_links) {
    if (l < 0 || l >= topo.num_links()) {
      spec_fail("dead link " + std::to_string(l) + " out of range for " +
                topo.name());
    }
  }
  for (const SlowLink& s : slow_links) {
    if (s.link < 0 || s.link >= topo.num_links()) {
      spec_fail("slowed link " + std::to_string(s.link) +
                " out of range for " + topo.name());
    }
    if (s.factor < 1) {
      spec_fail("slow factor must be >= 1 on link " +
                std::to_string(s.link));
    }
    if (std::find(dead_links.begin(), dead_links.end(), s.link) !=
        dead_links.end()) {
      spec_fail("link " + std::to_string(s.link) +
                " is both dead and slowed");
    }
  }
}

FaultSpec FaultSpec::random_spec(const Topology& topo, int num_dead_procs,
                                 int num_dead_links, int num_slow_links,
                                 std::uint64_t seed, int max_factor) {
  if (num_dead_procs < 0 || num_dead_links < 0 || num_slow_links < 0) {
    spec_fail("random fault counts must be non-negative");
  }
  if (max_factor < 2) {
    max_factor = 2;
  }
  FaultSpec spec;
  SplitMix64 rng(seed ^ 0xFA017ED700105EEDULL);
  // Distinct sampling by rejection: the pools are tiny (at most a few
  // thousand links), so this stays deterministic and cheap.
  auto sample_distinct = [&rng](int count, int pool,
                                std::vector<int>* out) {
    count = std::min(count, pool);
    while (static_cast<int>(out->size()) < count) {
      const int pick = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(pool)));
      if (std::find(out->begin(), out->end(), pick) == out->end()) {
        out->push_back(pick);
      }
    }
  };
  if (topo.num_procs() > 0) {
    sample_distinct(num_dead_procs, topo.num_procs(), &spec.dead_procs);
  }
  if (topo.num_links() > 0) {
    sample_distinct(num_dead_links, topo.num_links(), &spec.dead_links);
    std::vector<int> slow_ids = spec.dead_links;  // keep sets disjoint
    const int nd = static_cast<int>(spec.dead_links.size());
    const int ns = std::min(num_slow_links, topo.num_links() - nd);
    sample_distinct(nd + ns, topo.num_links(), &slow_ids);
    for (std::size_t i = spec.dead_links.size(); i < slow_ids.size();
         ++i) {
      spec.slow_links.push_back(
          {slow_ids[i], static_cast<int>(rng.next_in(2, max_factor))});
    }
  }
  spec.normalise();
  spec.validate(topo);
  return spec;
}

FaultSpec FaultSpec::parse(const std::string& text, const Topology& topo,
                           std::uint64_t seed) {
  FaultSpec spec;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string token = text.substr(start, end - start);
    start = end + 1;
    if (token.empty()) {
      if (text.empty()) {
        spec_fail("empty spec (write e.g. 'p3' or 'rand:1x1x0')");
      }
      spec_fail("empty token (stray comma?)");
    }
    std::size_t pos = 1;
    if (token[0] == 'p') {
      const long p = parse_number(token, pos, token);
      if (pos != token.size()) {
        spec_fail("trailing characters in token '" + token + "'");
      }
      if (p >= topo.num_procs()) {
        spec_fail("processor id out of range in token '" + token + "' (" +
                  topo.name() + " has " +
                  std::to_string(topo.num_procs()) + " processors)");
      }
      spec.dead_procs.push_back(static_cast<int>(p));
    } else if (token[0] == 'l') {
      const int link = resolve_link(topo, token, pos);
      if (pos != token.size()) {
        spec_fail("trailing characters in token '" + token + "'");
      }
      spec.dead_links.push_back(link);
    } else if (token[0] == 's') {
      const int link = resolve_link(topo, token, pos);
      if (pos >= token.size() || token[pos] != ':') {
        spec_fail("slow token '" + token + "' needs ':FACTOR'");
      }
      ++pos;
      const long factor = parse_number(token, pos, token);
      if (pos != token.size()) {
        spec_fail("trailing characters in token '" + token + "'");
      }
      if (factor < 1) {
        spec_fail("slow factor must be >= 1 in token '" + token + "'");
      }
      spec.slow_links.push_back({link, static_cast<int>(factor)});
    } else if (token.rfind("rand:", 0) == 0) {
      std::size_t rpos = 5;
      const long p = parse_number(token, rpos, token);
      if (rpos >= token.size() || token[rpos] != 'x') {
        spec_fail("rand token '" + token + "' must look like rand:PxLxS");
      }
      ++rpos;
      const long l = parse_number(token, rpos, token);
      if (rpos >= token.size() || token[rpos] != 'x') {
        spec_fail("rand token '" + token + "' must look like rand:PxLxS");
      }
      ++rpos;
      const long s = parse_number(token, rpos, token);
      if (rpos != token.size()) {
        spec_fail("trailing characters in token '" + token + "'");
      }
      const FaultSpec drawn =
          random_spec(topo, static_cast<int>(p), static_cast<int>(l),
                      static_cast<int>(s), seed);
      spec.dead_procs.insert(spec.dead_procs.end(),
                             drawn.dead_procs.begin(),
                             drawn.dead_procs.end());
      spec.dead_links.insert(spec.dead_links.end(),
                             drawn.dead_links.begin(),
                             drawn.dead_links.end());
      spec.slow_links.insert(spec.slow_links.end(),
                             drawn.slow_links.begin(),
                             drawn.slow_links.end());
    } else {
      spec_fail("unknown token '" + token + "' (" + grammar_help() + ")");
    }
    if (end == text.size()) {
      break;
    }
  }
  spec.normalise();
  // A drawn dead link may collide with an explicit slow link; dead wins.
  spec.slow_links.erase(
      std::remove_if(spec.slow_links.begin(), spec.slow_links.end(),
                     [&spec](const SlowLink& s) {
                       return std::binary_search(spec.dead_links.begin(),
                                                 spec.dead_links.end(),
                                                 s.link);
                     }),
      spec.slow_links.end());
  spec.validate(topo);
  return spec;
}

std::string FaultSpec::to_string() const {
  std::string out;
  auto append = [&out](const std::string& token) {
    if (!out.empty()) {
      out += ',';
    }
    out += token;
  };
  for (const int p : dead_procs) {
    append("p" + std::to_string(p));
  }
  for (const int l : dead_links) {
    append("l" + std::to_string(l));
  }
  for (const SlowLink& s : slow_links) {
    append("s" + std::to_string(s.link) + ":" + std::to_string(s.factor));
  }
  return out;
}

std::string FaultSpec::grammar_help() {
  return "fault spec grammar: pN | lN | lU-V | sN:F | sU-V:F | rand:PxLxS, "
         "comma separated";
}

namespace {

struct FaultedBuild {
  Graph links;
  std::vector<int> fault_to_base;
  std::vector<int> base_to_fault;
};

FaultedBuild build_faulted_graph(const Topology& base,
                                 const std::vector<char>& dead_link) {
  FaultedBuild build;
  build.links = Graph(base.num_procs());
  build.base_to_fault.assign(static_cast<std::size_t>(base.num_links()),
                             -1);
  for (int l = 0; l < base.num_links(); ++l) {
    if (dead_link[static_cast<std::size_t>(l)] != 0) {
      continue;
    }
    const auto [u, v] = base.link_endpoints(l);
    const int id = build.links.add_edge(u, v);
    build.base_to_fault[static_cast<std::size_t>(l)] = id;
    build.fault_to_base.push_back(l);
  }
  return build;
}

}  // namespace

FaultedTopology::FaultedTopology(const Topology& base, FaultSpec spec)
    : base_(&base),
      spec_((spec.normalise(), spec.validate(base), std::move(spec))),
      dead_proc_(static_cast<std::size_t>(base.num_procs()), 0),
      dead_link_(static_cast<std::size_t>(base.num_links()), 0),
      slowdown_(static_cast<std::size_t>(base.num_links()), 1),
      faulted_(Topology::custom("faulted", Graph(base.num_procs()))) {
  for (const int p : spec_.dead_procs) {
    dead_proc_[static_cast<std::size_t>(p)] = 1;
  }
  for (const int l : spec_.dead_links) {
    dead_link_[static_cast<std::size_t>(l)] = 1;
  }
  // A link with a dead endpoint is dead too.
  for (int l = 0; l < base.num_links(); ++l) {
    const auto [u, v] = base.link_endpoints(l);
    if (dead_proc_[static_cast<std::size_t>(u)] != 0 ||
        dead_proc_[static_cast<std::size_t>(v)] != 0) {
      dead_link_[static_cast<std::size_t>(l)] = 1;
    }
  }
  for (const SlowLink& s : spec_.slow_links) {
    if (dead_link_[static_cast<std::size_t>(s.link)] == 0) {
      slowdown_[static_cast<std::size_t>(s.link)] = s.factor;
    }
  }

  FaultedBuild build = build_faulted_graph(base, dead_link_);
  fault_to_base_link_ = std::move(build.fault_to_base);
  base_to_fault_link_ = std::move(build.base_to_fault);
  faulted_ = Topology::custom(
      base.name() + " [faulted " +
          (spec_.empty() ? std::string("-") : spec_.to_string()) + "]",
      std::move(build.links));

  // Alive census and the largest surviving component ("healthy").
  for (int p = 0; p < base.num_procs(); ++p) {
    if (dead_proc_[static_cast<std::size_t>(p)] == 0) {
      ++num_alive_procs_;
    }
  }
  const std::vector<int> comp = connected_components(faulted_.graph());
  std::vector<int> comp_size;
  for (int p = 0; p < base.num_procs(); ++p) {
    if (dead_proc_[static_cast<std::size_t>(p)] != 0) {
      continue;
    }
    const int c = comp[static_cast<std::size_t>(p)];
    if (static_cast<int>(comp_size.size()) <= c) {
      comp_size.resize(static_cast<std::size_t>(c) + 1, 0);
    }
    ++comp_size[static_cast<std::size_t>(c)];
  }
  int best_comp = -1;
  for (std::size_t c = 0; c < comp_size.size(); ++c) {
    // Strict > keeps the first-seen component on ties, and component
    // ids are assigned in first-seen (lowest processor id) order.
    if (best_comp < 0 ||
        comp_size[c] > comp_size[static_cast<std::size_t>(best_comp)]) {
      if (comp_size[c] > 0) {
        best_comp = static_cast<int>(c);
      }
    }
  }
  healthy_.assign(static_cast<std::size_t>(base.num_procs()), 0);
  if (best_comp >= 0) {
    for (int p = 0; p < base.num_procs(); ++p) {
      if (dead_proc_[static_cast<std::size_t>(p)] == 0 &&
          comp[static_cast<std::size_t>(p)] == best_comp) {
        healthy_[static_cast<std::size_t>(p)] = 1;
        healthy_procs_.push_back(p);
      }
    }
  }
  fully_connected_ =
      static_cast<int>(healthy_procs_.size()) == num_alive_procs_;
}

bool FaultedTopology::route_alive(const Route& route) const {
  for (const int node : route.nodes) {
    if (!proc_alive(node)) {
      return false;
    }
  }
  for (const int link : route.links) {
    if (!link_alive(link)) {
      return false;
    }
  }
  return true;
}

Route FaultedTopology::to_base(Route faulted_route) const {
  for (int& link : faulted_route.links) {
    link = base_link_of(link);
  }
  return faulted_route;
}

Route FaultedTopology::to_faulted(Route base_route) const {
  for (const int node : base_route.nodes) {
    if (!proc_alive(node)) {
      throw MappingError("route crosses dead processor " +
                         std::to_string(node));
    }
  }
  for (int& link : base_route.links) {
    const int f = faulted_link_of(link);
    if (f < 0) {
      throw MappingError("route crosses dead link " + std::to_string(link));
    }
    link = f;
  }
  return base_route;
}

std::vector<std::int64_t> FaultedTopology::faulted_link_factors() const {
  std::vector<std::int64_t> factors;
  factors.reserve(fault_to_base_link_.size());
  for (const int base_link : fault_to_base_link_) {
    factors.push_back(slowdown_[static_cast<std::size_t>(base_link)]);
  }
  return factors;
}

FaultedTopology::HealthySub FaultedTopology::healthy_subtopology() const {
  std::vector<int> sub_of_base(static_cast<std::size_t>(base_->num_procs()),
                               -1);
  for (std::size_t i = 0; i < healthy_procs_.size(); ++i) {
    sub_of_base[static_cast<std::size_t>(healthy_procs_[i])] =
        static_cast<int>(i);
  }
  Graph links(static_cast<int>(healthy_procs_.size()));
  std::vector<int> to_base_link;
  for (int l = 0; l < base_->num_links(); ++l) {
    if (dead_link_[static_cast<std::size_t>(l)] != 0) {
      continue;
    }
    const auto [u, v] = base_->link_endpoints(l);
    const int su = sub_of_base[static_cast<std::size_t>(u)];
    const int sv = sub_of_base[static_cast<std::size_t>(v)];
    if (su < 0 || sv < 0) {
      continue;  // surviving link of a smaller component
    }
    links.add_edge(su, sv);
    to_base_link.push_back(l);
  }
  HealthySub sub{
      Topology::custom(base_->name() + " [healthy " +
                           std::to_string(healthy_procs_.size()) + "/" +
                           std::to_string(base_->num_procs()) + "]",
                       std::move(links)),
      healthy_procs_, std::move(to_base_link)};
  return sub;
}

Mapping map_to_base(const FaultedTopology::HealthySub& sub,
                    Mapping mapping) {
  for (int& p : mapping.embedding.proc_of_cluster) {
    p = sub.to_base_proc[static_cast<std::size_t>(p)];
  }
  for (auto& phase : mapping.routing) {
    for (auto& route : phase.route_of_edge) {
      for (int& node : route.nodes) {
        node = sub.to_base_proc[static_cast<std::size_t>(node)];
      }
      for (int& link : route.links) {
        link = sub.to_base_link[static_cast<std::size_t>(link)];
      }
    }
  }
  return mapping;
}

}  // namespace oregami
