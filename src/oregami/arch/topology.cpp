#include "oregami/arch/topology.hpp"

#include <algorithm>
#include <bit>

#include "oregami/graph/gray_code.hpp"
#include "oregami/graph/shortest_paths.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

std::string to_string(TopoFamily family) {
  switch (family) {
    case TopoFamily::Custom:
      return "custom";
    case TopoFamily::Ring:
      return "ring";
    case TopoFamily::Chain:
      return "chain";
    case TopoFamily::Mesh:
      return "mesh";
    case TopoFamily::Torus:
      return "torus";
    case TopoFamily::Hypercube:
      return "hypercube";
    case TopoFamily::CompleteBinaryTree:
      return "complete-binary-tree";
    case TopoFamily::Star:
      return "star";
    case TopoFamily::Complete:
      return "complete";
    case TopoFamily::Butterfly:
      return "butterfly";
    case TopoFamily::Mesh3D:
      return "mesh3d";
  }
  return "custom";
}

Topology::Topology(std::string name, TopoFamily family,
                   std::vector<int> shape, Graph links)
    : name_(std::move(name)),
      family_(family),
      shape_(std::move(shape)),
      links_(std::move(links)),
      custom_dist_(family == TopoFamily::Custom
                       ? std::make_shared<CustomDistances>()
                       : nullptr) {}

Topology Topology::ring(int p) {
  OREGAMI_ASSERT(p >= 3, "ring needs at least 3 processors");
  Graph g(p);
  for (int i = 0; i < p; ++i) {
    g.add_edge(i, (i + 1) % p);
  }
  return Topology("ring(" + std::to_string(p) + ")", TopoFamily::Ring, {p},
                  std::move(g));
}

Topology Topology::chain(int p) {
  OREGAMI_ASSERT(p >= 1, "chain needs at least 1 processor");
  Graph g(p);
  for (int i = 0; i + 1 < p; ++i) {
    g.add_edge(i, i + 1);
  }
  return Topology("chain(" + std::to_string(p) + ")", TopoFamily::Chain,
                  {p}, std::move(g));
}

Topology Topology::mesh(int rows, int cols) {
  OREGAMI_ASSERT(rows >= 1 && cols >= 1, "mesh dimensions must be positive");
  Graph g(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int v = r * cols + c;
      if (c + 1 < cols) {
        g.add_edge(v, v + 1);
      }
      if (r + 1 < rows) {
        g.add_edge(v, v + cols);
      }
    }
  }
  return Topology(
      "mesh(" + std::to_string(rows) + "x" + std::to_string(cols) + ")",
      TopoFamily::Mesh, {rows, cols}, std::move(g));
}

Topology Topology::torus(int rows, int cols) {
  OREGAMI_ASSERT(rows >= 3 && cols >= 3,
                 "torus dimensions must be >= 3 (smaller wraps create "
                 "parallel links)");
  Graph g(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int v = r * cols + c;
      g.add_edge(v, r * cols + (c + 1) % cols);
      g.add_edge(v, ((r + 1) % rows) * cols + c);
    }
  }
  return Topology(
      "torus(" + std::to_string(rows) + "x" + std::to_string(cols) + ")",
      TopoFamily::Torus, {rows, cols}, std::move(g));
}

Topology Topology::hypercube(int dim) {
  OREGAMI_ASSERT(dim >= 0 && dim <= 20, "hypercube dimension out of range");
  const int p = 1 << dim;
  Graph g(p);
  for (int v = 0; v < p; ++v) {
    for (int b = 0; b < dim; ++b) {
      const int w = v ^ (1 << b);
      if (v < w) {
        g.add_edge(v, w);
      }
    }
  }
  return Topology("hypercube(" + std::to_string(dim) + ")",
                  TopoFamily::Hypercube, {dim}, std::move(g));
}

Topology Topology::complete_binary_tree(int levels) {
  OREGAMI_ASSERT(levels >= 1, "tree needs at least one level");
  const int p = (1 << levels) - 1;
  Graph g(p);
  for (int v = 1; v < p; ++v) {
    g.add_edge(v, (v - 1) / 2);
  }
  return Topology("cbt(" + std::to_string(levels) + ")",
                  TopoFamily::CompleteBinaryTree, {levels}, std::move(g));
}

Topology Topology::star(int p) {
  OREGAMI_ASSERT(p >= 2, "star needs at least 2 processors");
  Graph g(p);
  for (int v = 1; v < p; ++v) {
    g.add_edge(0, v);
  }
  return Topology("star(" + std::to_string(p) + ")", TopoFamily::Star, {p},
                  std::move(g));
}

Topology Topology::complete(int p) {
  OREGAMI_ASSERT(p >= 2, "complete graph needs at least 2 processors");
  Graph g(p);
  for (int u = 0; u < p; ++u) {
    for (int v = u + 1; v < p; ++v) {
      g.add_edge(u, v);
    }
  }
  return Topology("complete(" + std::to_string(p) + ")",
                  TopoFamily::Complete, {p}, std::move(g));
}

Topology Topology::butterfly(int k) {
  OREGAMI_ASSERT(k >= 1 && k <= 12, "butterfly order out of range");
  // (k+1) ranks x 2^k columns; rank l node of column c connects to rank
  // l+1 nodes of columns c and c ^ (1 << l) (straight + cross edges).
  const int cols = 1 << k;
  const int p = (k + 1) * cols;
  Graph g(p);
  auto id = [cols](int rank, int col) { return rank * cols + col; };
  for (int rank = 0; rank < k; ++rank) {
    for (int col = 0; col < cols; ++col) {
      g.add_edge(id(rank, col), id(rank + 1, col));
      g.add_edge(id(rank, col), id(rank + 1, col ^ (1 << rank)));
    }
  }
  return Topology("butterfly(" + std::to_string(k) + ")",
                  TopoFamily::Butterfly, {k}, std::move(g));
}

Topology Topology::mesh3d(int nx, int ny, int nz) {
  OREGAMI_ASSERT(nx >= 1 && ny >= 1 && nz >= 1,
                 "mesh3d dimensions must be positive");
  Graph g(nx * ny * nz);
  auto id = [ny, nz](int x, int y, int z) { return (x * ny + y) * nz + z; };
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      for (int z = 0; z < nz; ++z) {
        if (x + 1 < nx) {
          g.add_edge(id(x, y, z), id(x + 1, y, z));
        }
        if (y + 1 < ny) {
          g.add_edge(id(x, y, z), id(x, y + 1, z));
        }
        if (z + 1 < nz) {
          g.add_edge(id(x, y, z), id(x, y, z + 1));
        }
      }
    }
  }
  return Topology("mesh3d(" + std::to_string(nx) + "x" +
                      std::to_string(ny) + "x" + std::to_string(nz) + ")",
                  TopoFamily::Mesh3D, {nx, ny, nz}, std::move(g));
}

Topology Topology::custom(std::string name, Graph links) {
  return Topology(std::move(name), TopoFamily::Custom, {},
                  std::move(links));
}

std::optional<int> Topology::link_between(int u, int v) const {
  for (const auto& a : links_.neighbors(u)) {
    if (a.neighbor == v) {
      return a.edge_id;
    }
  }
  return std::nullopt;
}

std::pair<int, int> Topology::link_endpoints(int l) const {
  OREGAMI_ASSERT(l >= 0 && l < num_links(), "link id out of range");
  const auto& e = links_.edges()[static_cast<std::size_t>(l)];
  return {e.u, e.v};
}

const Topology::CustomDistances& Topology::custom_distances() const {
  auto& state = *custom_dist_;
  // call_once both serialises the fill and publishes it: every thread
  // returning from here sees the completed table, so an unwarmed Custom
  // topology can be shared across threads safely (the hazard the PR-1
  // portfolio worked around with an explicit pre-warm).
  std::call_once(state.once, [&] {
    const int p = num_procs();
    state.flat.resize(static_cast<std::size_t>(p) *
                      static_cast<std::size_t>(p));
    for (int u = 0; u < p; ++u) {
      const std::vector<int> row = bfs_distances(links_, u);
      std::copy(row.begin(), row.end(),
                state.flat.begin() +
                    static_cast<std::ptrdiff_t>(u) * p);
    }
    for (const int d : state.flat) {
      state.min_entry = std::min(state.min_entry, d);
      state.diameter = std::max(state.diameter, d);
    }
  });
  return state;
}

int Topology::distance(int u, int v) const {
  OREGAMI_ASSERT(u >= 0 && u < num_procs() && v >= 0 && v < num_procs(),
                 "processor id out of range");
  switch (family_) {
    case TopoFamily::Ring: {
      const int d = u < v ? v - u : u - v;
      return std::min(d, shape_[0] - d);
    }
    case TopoFamily::Chain:
      return u < v ? v - u : u - v;
    case TopoFamily::Mesh: {
      const int cols = shape_[1];
      const int dr = u / cols - v / cols;
      const int dc = u % cols - v % cols;
      return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
    }
    case TopoFamily::Torus: {
      const int rows = shape_[0];
      const int cols = shape_[1];
      int dr = u / cols - v / cols;
      int dc = u % cols - v % cols;
      dr = dr < 0 ? -dr : dr;
      dc = dc < 0 ? -dc : dc;
      return std::min(dr, rows - dr) + std::min(dc, cols - dc);
    }
    case TopoFamily::Hypercube:
      return std::popcount(static_cast<unsigned>(u ^ v));
    case TopoFamily::CompleteBinaryTree: {
      // Heap numbering (children of v are 2v+1, 2v+2): lift the deeper
      // node to the other's level, then lift both to the LCA.
      int a = u;
      int b = v;
      int da = static_cast<int>(
                   std::bit_width(static_cast<unsigned>(a) + 1u)) - 1;
      int db = static_cast<int>(
                   std::bit_width(static_cast<unsigned>(b) + 1u)) - 1;
      int d = 0;
      for (; da > db; --da, ++d) {
        a = (a - 1) / 2;
      }
      for (; db > da; --db, ++d) {
        b = (b - 1) / 2;
      }
      while (a != b) {
        a = (a - 1) / 2;
        b = (b - 1) / 2;
        d += 2;
      }
      return d;
    }
    case TopoFamily::Star:
      return u == v ? 0 : (u == 0 || v == 0 ? 1 : 2);
    case TopoFamily::Complete:
      return u == v ? 0 : 1;
    case TopoFamily::Butterfly: {
      // Node = (rank, column). The only edges sit between consecutive
      // ranks, and crossing the (b, b+1) transition may flip column bit
      // b. A walk from rank r1 to r2 that fixes the differing bits must
      // therefore visit rank lo = lowest differing bit and rank hi =
      // highest differing bit + 1; the cheapest such walk sweeps down
      // first or up first, whichever is shorter.
      const int cols = 1 << shape_[0];
      const int r1 = u / cols;
      const int r2 = v / cols;
      const unsigned diff =
          static_cast<unsigned>((u % cols) ^ (v % cols));
      if (diff == 0) {
        return r1 < r2 ? r2 - r1 : r1 - r2;
      }
      const int lo = std::countr_zero(diff);
      const int hi = static_cast<int>(std::bit_width(diff));
      const int low = std::min({r1, r2, lo});
      const int high = std::max({r1, r2, hi});
      const int down_first = (r1 - low) + (high - low) + (high - r2);
      const int up_first = (high - r1) + (high - low) + (r2 - low);
      return std::min(down_first, up_first);
    }
    case TopoFamily::Mesh3D: {
      const int ny = shape_[1];
      const int nz = shape_[2];
      const int dx = u / (ny * nz) - v / (ny * nz);
      const int dy = (u / nz) % ny - (v / nz) % ny;
      const int dz = u % nz - v % nz;
      return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy) +
             (dz < 0 ? -dz : dz);
    }
    case TopoFamily::Custom:
      return custom_distances()
          .flat[static_cast<std::size_t>(u) *
                    static_cast<std::size_t>(num_procs()) +
                static_cast<std::size_t>(v)];
  }
  return 0;  // unreachable
}

DistanceRow Topology::distance_row(int u) const {
  OREGAMI_ASSERT(u >= 0 && u < num_procs(), "processor id out of range");
  const int* row = nullptr;
  if (family_ == TopoFamily::Custom) {
    row = custom_distances().flat.data() +
          static_cast<std::size_t>(u) * static_cast<std::size_t>(num_procs());
  }
  return DistanceRow(*this, u, row);
}

void Topology::precompute_distances() const {
  if (family_ == TopoFamily::Custom && num_procs() > 0) {
    (void)custom_distances();
  }
}

int Topology::diameter() const {
  switch (family_) {
    case TopoFamily::Ring:
      return shape_[0] / 2;
    case TopoFamily::Chain:
      return shape_[0] - 1;
    case TopoFamily::Mesh:
      return (shape_[0] - 1) + (shape_[1] - 1);
    case TopoFamily::Torus:
      return shape_[0] / 2 + shape_[1] / 2;
    case TopoFamily::Hypercube:
      return shape_[0];
    case TopoFamily::CompleteBinaryTree:
      return 2 * (shape_[0] - 1);
    case TopoFamily::Star:
      return num_procs() <= 2 ? num_procs() - 1 : 2;
    case TopoFamily::Complete:
      return 1;
    case TopoFamily::Butterfly:
      return 2 * shape_[0];
    case TopoFamily::Mesh3D:
      return (shape_[0] - 1) + (shape_[1] - 1) + (shape_[2] - 1);
    case TopoFamily::Custom: {
      if (num_procs() == 0) {
        return 0;
      }
      const auto& state = custom_distances();
      OREGAMI_ASSERT(state.min_entry >= 0, "topology must be connected");
      return state.diameter;
    }
  }
  return 0;  // unreachable
}

std::string Topology::proc_label(int p) const {
  switch (family_) {
    case TopoFamily::Mesh:
    case TopoFamily::Torus: {
      const auto [r, c] = coords2d(p);
      return "(" + std::to_string(r) + "," + std::to_string(c) + ")";
    }
    case TopoFamily::Hypercube: {
      const int dim = shape_[0];
      std::string bits;
      for (int b = dim - 1; b >= 0; --b) {
        bits += ((p >> b) & 1) ? '1' : '0';
      }
      return bits.empty() ? "0" : bits;
    }
    default:
      return std::to_string(p);
  }
}

std::pair<int, int> Topology::coords2d(int p) const {
  OREGAMI_ASSERT(family_ == TopoFamily::Mesh || family_ == TopoFamily::Torus,
                 "coords2d requires a 2-D mesh/torus topology");
  const int cols = shape_[1];
  return {p / cols, p % cols};
}

int Topology::at2d(int r, int c) const {
  OREGAMI_ASSERT(family_ == TopoFamily::Mesh || family_ == TopoFamily::Torus,
                 "at2d requires a 2-D mesh/torus topology");
  OREGAMI_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
                 "mesh coordinates out of range");
  return r * shape_[1] + c;
}

}  // namespace oregami
