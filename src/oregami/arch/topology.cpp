#include "oregami/arch/topology.hpp"

#include <algorithm>

#include "oregami/graph/gray_code.hpp"
#include "oregami/graph/shortest_paths.hpp"
#include "oregami/support/error.hpp"

namespace oregami {

std::string to_string(TopoFamily family) {
  switch (family) {
    case TopoFamily::Custom:
      return "custom";
    case TopoFamily::Ring:
      return "ring";
    case TopoFamily::Chain:
      return "chain";
    case TopoFamily::Mesh:
      return "mesh";
    case TopoFamily::Torus:
      return "torus";
    case TopoFamily::Hypercube:
      return "hypercube";
    case TopoFamily::CompleteBinaryTree:
      return "complete-binary-tree";
    case TopoFamily::Star:
      return "star";
    case TopoFamily::Complete:
      return "complete";
    case TopoFamily::Butterfly:
      return "butterfly";
    case TopoFamily::Mesh3D:
      return "mesh3d";
  }
  return "custom";
}

Topology::Topology(std::string name, TopoFamily family,
                   std::vector<int> shape, Graph links)
    : name_(std::move(name)),
      family_(family),
      shape_(std::move(shape)),
      links_(std::move(links)),
      dist_rows_(static_cast<std::size_t>(links_.num_vertices())) {}

Topology Topology::ring(int p) {
  OREGAMI_ASSERT(p >= 3, "ring needs at least 3 processors");
  Graph g(p);
  for (int i = 0; i < p; ++i) {
    g.add_edge(i, (i + 1) % p);
  }
  return Topology("ring(" + std::to_string(p) + ")", TopoFamily::Ring, {p},
                  std::move(g));
}

Topology Topology::chain(int p) {
  OREGAMI_ASSERT(p >= 1, "chain needs at least 1 processor");
  Graph g(p);
  for (int i = 0; i + 1 < p; ++i) {
    g.add_edge(i, i + 1);
  }
  return Topology("chain(" + std::to_string(p) + ")", TopoFamily::Chain,
                  {p}, std::move(g));
}

Topology Topology::mesh(int rows, int cols) {
  OREGAMI_ASSERT(rows >= 1 && cols >= 1, "mesh dimensions must be positive");
  Graph g(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int v = r * cols + c;
      if (c + 1 < cols) {
        g.add_edge(v, v + 1);
      }
      if (r + 1 < rows) {
        g.add_edge(v, v + cols);
      }
    }
  }
  return Topology(
      "mesh(" + std::to_string(rows) + "x" + std::to_string(cols) + ")",
      TopoFamily::Mesh, {rows, cols}, std::move(g));
}

Topology Topology::torus(int rows, int cols) {
  OREGAMI_ASSERT(rows >= 3 && cols >= 3,
                 "torus dimensions must be >= 3 (smaller wraps create "
                 "parallel links)");
  Graph g(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int v = r * cols + c;
      g.add_edge(v, r * cols + (c + 1) % cols);
      g.add_edge(v, ((r + 1) % rows) * cols + c);
    }
  }
  return Topology(
      "torus(" + std::to_string(rows) + "x" + std::to_string(cols) + ")",
      TopoFamily::Torus, {rows, cols}, std::move(g));
}

Topology Topology::hypercube(int dim) {
  OREGAMI_ASSERT(dim >= 0 && dim <= 20, "hypercube dimension out of range");
  const int p = 1 << dim;
  Graph g(p);
  for (int v = 0; v < p; ++v) {
    for (int b = 0; b < dim; ++b) {
      const int w = v ^ (1 << b);
      if (v < w) {
        g.add_edge(v, w);
      }
    }
  }
  return Topology("hypercube(" + std::to_string(dim) + ")",
                  TopoFamily::Hypercube, {dim}, std::move(g));
}

Topology Topology::complete_binary_tree(int levels) {
  OREGAMI_ASSERT(levels >= 1, "tree needs at least one level");
  const int p = (1 << levels) - 1;
  Graph g(p);
  for (int v = 1; v < p; ++v) {
    g.add_edge(v, (v - 1) / 2);
  }
  return Topology("cbt(" + std::to_string(levels) + ")",
                  TopoFamily::CompleteBinaryTree, {levels}, std::move(g));
}

Topology Topology::star(int p) {
  OREGAMI_ASSERT(p >= 2, "star needs at least 2 processors");
  Graph g(p);
  for (int v = 1; v < p; ++v) {
    g.add_edge(0, v);
  }
  return Topology("star(" + std::to_string(p) + ")", TopoFamily::Star, {p},
                  std::move(g));
}

Topology Topology::complete(int p) {
  OREGAMI_ASSERT(p >= 2, "complete graph needs at least 2 processors");
  Graph g(p);
  for (int u = 0; u < p; ++u) {
    for (int v = u + 1; v < p; ++v) {
      g.add_edge(u, v);
    }
  }
  return Topology("complete(" + std::to_string(p) + ")",
                  TopoFamily::Complete, {p}, std::move(g));
}

Topology Topology::butterfly(int k) {
  OREGAMI_ASSERT(k >= 1 && k <= 12, "butterfly order out of range");
  // (k+1) ranks x 2^k columns; rank l node of column c connects to rank
  // l+1 nodes of columns c and c ^ (1 << l) (straight + cross edges).
  const int cols = 1 << k;
  const int p = (k + 1) * cols;
  Graph g(p);
  auto id = [cols](int rank, int col) { return rank * cols + col; };
  for (int rank = 0; rank < k; ++rank) {
    for (int col = 0; col < cols; ++col) {
      g.add_edge(id(rank, col), id(rank + 1, col));
      g.add_edge(id(rank, col), id(rank + 1, col ^ (1 << rank)));
    }
  }
  return Topology("butterfly(" + std::to_string(k) + ")",
                  TopoFamily::Butterfly, {k}, std::move(g));
}

Topology Topology::mesh3d(int nx, int ny, int nz) {
  OREGAMI_ASSERT(nx >= 1 && ny >= 1 && nz >= 1,
                 "mesh3d dimensions must be positive");
  Graph g(nx * ny * nz);
  auto id = [ny, nz](int x, int y, int z) { return (x * ny + y) * nz + z; };
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      for (int z = 0; z < nz; ++z) {
        if (x + 1 < nx) {
          g.add_edge(id(x, y, z), id(x + 1, y, z));
        }
        if (y + 1 < ny) {
          g.add_edge(id(x, y, z), id(x, y + 1, z));
        }
        if (z + 1 < nz) {
          g.add_edge(id(x, y, z), id(x, y, z + 1));
        }
      }
    }
  }
  return Topology("mesh3d(" + std::to_string(nx) + "x" +
                      std::to_string(ny) + "x" + std::to_string(nz) + ")",
                  TopoFamily::Mesh3D, {nx, ny, nz}, std::move(g));
}

Topology Topology::custom(std::string name, Graph links) {
  return Topology(std::move(name), TopoFamily::Custom, {},
                  std::move(links));
}

std::optional<int> Topology::link_between(int u, int v) const {
  for (const auto& a : links_.neighbors(u)) {
    if (a.neighbor == v) {
      return a.edge_id;
    }
  }
  return std::nullopt;
}

std::pair<int, int> Topology::link_endpoints(int l) const {
  OREGAMI_ASSERT(l >= 0 && l < num_links(), "link id out of range");
  const auto& e = links_.edges()[static_cast<std::size_t>(l)];
  return {e.u, e.v};
}

const std::vector<int>& Topology::distance_row(int u) const {
  OREGAMI_ASSERT(u >= 0 && u < num_procs(), "processor id out of range");
  auto& row = dist_rows_[static_cast<std::size_t>(u)];
  if (row.empty() && num_procs() > 0) {
    row = bfs_distances(links_, u);
  }
  return row;
}

int Topology::distance(int u, int v) const {
  return distance_row(u)[static_cast<std::size_t>(v)];
}

void Topology::precompute_distances() const {
  for (int u = 0; u < num_procs(); ++u) {
    (void)distance_row(u);
  }
}

int Topology::diameter() const {
  int best = 0;
  for (int u = 0; u < num_procs(); ++u) {
    for (const int d : distance_row(u)) {
      OREGAMI_ASSERT(d >= 0, "topology must be connected");
      best = std::max(best, d);
    }
  }
  return best;
}

std::string Topology::proc_label(int p) const {
  switch (family_) {
    case TopoFamily::Mesh:
    case TopoFamily::Torus: {
      const auto [r, c] = coords2d(p);
      return "(" + std::to_string(r) + "," + std::to_string(c) + ")";
    }
    case TopoFamily::Hypercube: {
      const int dim = shape_[0];
      std::string bits;
      for (int b = dim - 1; b >= 0; --b) {
        bits += ((p >> b) & 1) ? '1' : '0';
      }
      return bits.empty() ? "0" : bits;
    }
    default:
      return std::to_string(p);
  }
}

std::pair<int, int> Topology::coords2d(int p) const {
  OREGAMI_ASSERT(family_ == TopoFamily::Mesh || family_ == TopoFamily::Torus,
                 "coords2d requires a 2-D mesh/torus topology");
  const int cols = shape_[1];
  return {p / cols, p % cols};
}

int Topology::at2d(int r, int c) const {
  OREGAMI_ASSERT(family_ == TopoFamily::Mesh || family_ == TopoFamily::Torus,
                 "at2d requires a 2-D mesh/torus topology");
  OREGAMI_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
                 "mesh coordinates out of range");
  return r * shape_[1] + c;
}

}  // namespace oregami
