// Route machinery over a Topology: shortest-route choice enumeration
// (the "table of routing information" MM-Route consults in Fig 6),
// deterministic dimension-order routes for baselines, and route
// validity checking.
#pragma once

#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"

namespace oregami {

/// Neighbors of `from` that lie on some shortest path to `dst`
/// (distance decreases by one). Empty when from == dst.
[[nodiscard]] std::vector<int> next_hop_choices(const Topology& topo,
                                                int from, int dst);

/// All shortest paths from src to dst as Route objects, capped at
/// `limit` paths (enumeration order: neighbor id ascending, depth
/// first). With limit = 0 returns every shortest path.
[[nodiscard]] std::vector<Route> all_shortest_routes(const Topology& topo,
                                                     int src, int dst,
                                                     std::size_t limit = 0);

/// Number of distinct shortest paths src -> dst (counted exactly with
/// 64-bit arithmetic).
[[nodiscard]] std::uint64_t count_shortest_routes(const Topology& topo,
                                                  int src, int dst);

/// One canonical shortest route chosen greedily (lowest-numbered
/// next hop at each step).
[[nodiscard]] Route greedy_shortest_route(const Topology& topo, int src,
                                          int dst);

/// Dimension-order (e-cube / XY) route. Supported for Hypercube
/// (ascending bit corrections), Mesh and Torus (column first, then
/// row), Ring and Chain (the only shortest direction). Throws
/// MappingError for other families.
[[nodiscard]] Route dimension_order_route(const Topology& topo, int src,
                                          int dst);

/// Builds a Route from a processor sequence, resolving link ids;
/// throws MappingError when consecutive processors are not adjacent.
[[nodiscard]] Route route_from_nodes(const Topology& topo,
                                     std::vector<int> nodes);

/// True when the route is well-formed on `topo`: node/link sequences
/// consistent, every link real and joining its adjacent node pair, and
/// endpoints equal to src/dst.
[[nodiscard]] bool is_valid_route(const Topology& topo, const Route& route,
                                  int src, int dst);

/// True additionally when the route length equals the hop distance.
[[nodiscard]] bool is_shortest_route(const Topology& topo,
                                     const Route& route, int src, int dst);

}  // namespace oregami
