#include "oregami/arch/routes.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

std::vector<int> next_hop_choices(const Topology& topo, int from, int dst) {
  std::vector<int> choices;
  if (from == dst) {
    return choices;
  }
  const auto& dist = topo.distance_row(dst);
  const int here = dist[static_cast<std::size_t>(from)];
  for (const auto& a : topo.graph().neighbors(from)) {
    if (dist[static_cast<std::size_t>(a.neighbor)] == here - 1) {
      choices.push_back(a.neighbor);
    }
  }
  std::sort(choices.begin(), choices.end());
  return choices;
}

namespace {

void enumerate_routes(const Topology& topo, int current, int dst,
                      std::vector<int>& nodes, std::vector<Route>& out,
                      std::size_t limit) {
  if (limit != 0 && out.size() >= limit) {
    return;
  }
  if (current == dst) {
    out.push_back(route_from_nodes(topo, nodes));
    return;
  }
  for (const int next : next_hop_choices(topo, current, dst)) {
    nodes.push_back(next);
    enumerate_routes(topo, next, dst, nodes, out, limit);
    nodes.pop_back();
  }
}

}  // namespace

std::vector<Route> all_shortest_routes(const Topology& topo, int src,
                                       int dst, std::size_t limit) {
  std::vector<Route> out;
  std::vector<int> nodes{src};
  enumerate_routes(topo, src, dst, nodes, out, limit);
  return out;
}

std::uint64_t count_shortest_routes(const Topology& topo, int src,
                                    int dst) {
  // Count over the shortest-path DAG by increasing distance from src.
  const auto& from_src = topo.distance_row(src);
  const int d = from_src[static_cast<std::size_t>(dst)];
  OREGAMI_ASSERT(d >= 0, "count_shortest_routes: unreachable destination");
  std::vector<int> order;
  for (int v = 0; v < topo.num_procs(); ++v) {
    const int dv = from_src[static_cast<std::size_t>(v)];
    if (dv >= 0 && dv <= d &&
        topo.distance(v, dst) == d - dv) {
      order.push_back(v);
    }
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return from_src[static_cast<std::size_t>(a)] <
           from_src[static_cast<std::size_t>(b)];
  });
  std::vector<std::uint64_t> ways(
      static_cast<std::size_t>(topo.num_procs()), 0);
  ways[static_cast<std::size_t>(src)] = 1;
  for (const int v : order) {
    if (v == src) {
      continue;
    }
    std::uint64_t total = 0;
    for (const auto& a : topo.graph().neighbors(v)) {
      if (from_src[static_cast<std::size_t>(a.neighbor)] ==
              from_src[static_cast<std::size_t>(v)] - 1 &&
          topo.distance(a.neighbor, dst) ==
              d - from_src[static_cast<std::size_t>(a.neighbor)]) {
        total += ways[static_cast<std::size_t>(a.neighbor)];
      }
    }
    ways[static_cast<std::size_t>(v)] = total;
  }
  return ways[static_cast<std::size_t>(dst)];
}

Route greedy_shortest_route(const Topology& topo, int src, int dst) {
  std::vector<int> nodes{src};
  int current = src;
  while (current != dst) {
    const auto choices = next_hop_choices(topo, current, dst);
    OREGAMI_ASSERT(!choices.empty(), "destination must be reachable");
    current = choices.front();
    nodes.push_back(current);
  }
  return route_from_nodes(topo, std::move(nodes));
}

Route dimension_order_route(const Topology& topo, int src, int dst) {
  std::vector<int> nodes{src};
  switch (topo.family()) {
    case TopoFamily::Hypercube: {
      int current = src;
      const int dim = topo.shape()[0];
      for (int b = 0; b < dim; ++b) {
        if (((current ^ dst) >> b) & 1) {
          current ^= 1 << b;
          nodes.push_back(current);
        }
      }
      break;
    }
    case TopoFamily::Mesh: {
      auto [r, c] = topo.coords2d(src);
      const auto [dr, dc] = topo.coords2d(dst);
      while (c != dc) {
        c += (dc > c) ? 1 : -1;
        nodes.push_back(topo.at2d(r, c));
      }
      while (r != dr) {
        r += (dr > r) ? 1 : -1;
        nodes.push_back(topo.at2d(r, c));
      }
      break;
    }
    case TopoFamily::Torus: {
      auto [r, c] = topo.coords2d(src);
      const auto [dr, dc] = topo.coords2d(dst);
      const int rows = topo.shape()[0];
      const int cols = topo.shape()[1];
      // Step in the shorter wrap direction per dimension; ties go up.
      auto step = [](int from, int to, int size) {
        const int fwd = (to - from + size) % size;
        const int back = (from - to + size) % size;
        return fwd <= back ? 1 : -1;
      };
      const int cstep = step(c, dc, cols);
      while (c != dc) {
        c = (c + cstep + cols) % cols;
        nodes.push_back(topo.at2d(r, c));
      }
      const int rstep = step(r, dr, rows);
      while (r != dr) {
        r = (r + rstep + rows) % rows;
        nodes.push_back(topo.at2d(r, c));
      }
      break;
    }
    case TopoFamily::Ring: {
      const int p = topo.num_procs();
      const int fwd = (dst - src + p) % p;
      const int back = (src - dst + p) % p;
      const int dir = fwd <= back ? 1 : -1;
      int current = src;
      while (current != dst) {
        current = (current + dir + p) % p;
        nodes.push_back(current);
      }
      break;
    }
    case TopoFamily::Chain: {
      int current = src;
      while (current != dst) {
        current += (dst > current) ? 1 : -1;
        nodes.push_back(current);
      }
      break;
    }
    default:
      throw MappingError(
          "dimension-order routing is undefined for topology family '" +
          to_string(topo.family()) + "'");
  }
  return route_from_nodes(topo, std::move(nodes));
}

Route route_from_nodes(const Topology& topo, std::vector<int> nodes) {
  OREGAMI_ASSERT(!nodes.empty(), "a route needs at least one node");
  Route route;
  route.nodes = std::move(nodes);
  for (std::size_t i = 0; i + 1 < route.nodes.size(); ++i) {
    const auto link =
        topo.link_between(route.nodes[i], route.nodes[i + 1]);
    if (!link) {
      throw MappingError("route steps between non-adjacent processors " +
                         std::to_string(route.nodes[i]) + " and " +
                         std::to_string(route.nodes[i + 1]));
    }
    route.links.push_back(*link);
  }
  return route;
}

bool is_valid_route(const Topology& topo, const Route& route, int src,
                    int dst) {
  if (route.nodes.empty() ||
      route.links.size() + 1 != route.nodes.size()) {
    return false;
  }
  if (route.nodes.front() != src || route.nodes.back() != dst) {
    return false;
  }
  for (std::size_t i = 0; i < route.links.size(); ++i) {
    const auto link = topo.link_between(route.nodes[i], route.nodes[i + 1]);
    if (!link || *link != route.links[i]) {
      return false;
    }
  }
  return true;
}

bool is_shortest_route(const Topology& topo, const Route& route, int src,
                       int dst) {
  return is_valid_route(topo, route, src, dst) &&
         route.hops() == topo.distance(src, dst);
}

}  // namespace oregami
