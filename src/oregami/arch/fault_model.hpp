// Fault injection over a Topology (graceful degradation, ROADMAP
// north-star): a production mapping service must keep answering when
// processors and links die, so the target architecture becomes a
// *mutable, failure-prone* object instead of a fixed network.
//
// The model has two layers:
//   * FaultSpec     -- a plain, serialisable description of what broke:
//                      dead processors, dead links, and slowed links
//                      (a link that still works but serialises volume
//                      `factor` times slower). Specs can be written by
//                      hand, parsed from the CLI grammar, or drawn
//                      deterministically from a seed.
//   * FaultedTopology -- the degraded machine: the base topology with
//                      dead links removed and dead processors isolated.
//                      Processor ids are STABLE (a mapping's processor
//                      numbers mean the same thing before and after the
//                      fault); only link ids are renumbered, and the
//                      view carries the translation both ways. The
//                      degraded link graph is a Custom-family Topology,
//                      so distance queries fall back to the thread-safe
//                      BFS table (closed-form oracles are wrong once
//                      links are missing) and unreachable pairs report
//                      -1.
//
// Every construction is deterministic: identical (FaultSpec, seed)
// yields a byte-identical faulted topology, which the repair ladder
// (mapper/repair.hpp) relies on for its reproducibility contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oregami/arch/topology.hpp"
#include "oregami/core/mapping.hpp"

namespace oregami {

/// A link that survives but serialises `factor` times slower.
struct SlowLink {
  int link = 0;    ///< base-topology link id
  int factor = 2;  ///< >= 1; 1 means "not actually slowed"
};

/// A deterministic description of injected faults, in base-topology
/// ids. A default-constructed spec is the healthy machine.
struct FaultSpec {
  std::vector<int> dead_procs;
  std::vector<int> dead_links;      ///< base link ids
  std::vector<SlowLink> slow_links;

  [[nodiscard]] bool empty() const {
    return dead_procs.empty() && dead_links.empty() && slow_links.empty();
  }

  /// Sorts and deduplicates the fault lists (duplicate slow factors on
  /// one link multiply). Normalised specs compare bytewise.
  void normalise();

  /// Throws MappingError unless every id is in range for `topo`, every
  /// slow factor is >= 1, and no slowed link is also dead.
  void validate(const Topology& topo) const;

  /// Draws a spec with exactly the requested fault counts from a
  /// SplitMix64 stream (deterministic in `seed`). Slow factors are
  /// uniform in [2, max_factor]. Counts are clamped to the available
  /// processors/links; dead and slowed link sets are disjoint.
  [[nodiscard]] static FaultSpec random_spec(const Topology& topo,
                                             int num_dead_procs,
                                             int num_dead_links,
                                             int num_slow_links,
                                             std::uint64_t seed,
                                             int max_factor = 8);

  /// Parses the CLI grammar: comma-separated tokens
  ///   pN        dead processor N
  ///   lN        dead link N (base link id)
  ///   lU-V      dead link between processors U and V
  ///   sN:F      link N slowed by factor F
  ///   sU-V:F    link between U and V slowed by factor F
  ///   rand:PxLxS   P random dead processors, L dead links, S slowed
  ///                links drawn from `seed`
  /// Throws MappingError (with the offending token) on malformed input
  /// or ids that do not exist in `topo`.
  [[nodiscard]] static FaultSpec parse(const std::string& text,
                                       const Topology& topo,
                                       std::uint64_t seed = 0);

  /// Renders back into the parse() grammar (normalised order).
  [[nodiscard]] std::string to_string() const;

  /// Grammar summary for CLI usage text.
  [[nodiscard]] static std::string grammar_help();
};

/// The degraded machine: base topology + FaultSpec, precomputed alive /
/// healthy sets and the link-id translation between the base and the
/// degraded link graphs.
///
/// "Alive" means not dead; "healthy" means alive AND a member of the
/// largest connected component of the degraded link graph (ties broken
/// toward the component containing the lowest processor id). Mapping
/// repair places tasks only on healthy processors, because routes
/// between distinct surviving components do not exist.
class FaultedTopology {
 public:
  /// Validates and normalises `spec` against `base`. The base topology
  /// is captured by reference and must outlive the view.
  FaultedTopology(const Topology& base, FaultSpec spec);

  [[nodiscard]] const Topology& base() const { return *base_; }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// The degraded link graph as a Custom-family Topology: same
  /// processor count as the base (dead processors are isolated
  /// vertices), surviving links only, renumbered densely in base-id
  /// order.
  [[nodiscard]] const Topology& faulted() const { return faulted_; }

  [[nodiscard]] bool proc_alive(int p) const {
    return dead_proc_[static_cast<std::size_t>(p)] == 0;
  }
  [[nodiscard]] bool link_alive(int base_link) const {
    return dead_link_[static_cast<std::size_t>(base_link)] == 0;
  }
  /// Serialisation multiplier of an alive base link (>= 1).
  [[nodiscard]] std::int64_t link_slowdown(int base_link) const {
    return slowdown_[static_cast<std::size_t>(base_link)];
  }

  [[nodiscard]] int num_alive_procs() const { return num_alive_procs_; }
  [[nodiscard]] int num_alive_links() const {
    return faulted_.num_links();
  }

  /// True when every alive processor sits in one connected component
  /// of the degraded graph.
  [[nodiscard]] bool fully_connected() const { return fully_connected_; }

  /// The healthy processors (largest surviving component), ascending.
  [[nodiscard]] const std::vector<int>& healthy_procs() const {
    return healthy_procs_;
  }
  [[nodiscard]] bool healthy(int p) const {
    return healthy_[static_cast<std::size_t>(p)] != 0;
  }

  /// Link-id translation. faulted -> base is total; base -> faulted
  /// returns -1 for a dead base link.
  [[nodiscard]] int base_link_of(int faulted_link) const {
    return fault_to_base_link_[static_cast<std::size_t>(faulted_link)];
  }
  [[nodiscard]] int faulted_link_of(int base_link) const {
    return base_to_fault_link_[static_cast<std::size_t>(base_link)];
  }

  /// True when a route (base link ids) touches no dead processor or
  /// dead link.
  [[nodiscard]] bool route_alive(const Route& route) const;

  /// Rewrites a route's link ids between the two numberings. The node
  /// sequence is unchanged (processor ids are stable). to_faulted
  /// throws MappingError when the route crosses a dead link or dead
  /// processor.
  [[nodiscard]] Route to_base(Route faulted_route) const;
  [[nodiscard]] Route to_faulted(Route base_route) const;

  /// Per-link serialisation factors for the degraded link graph
  /// (index = faulted link id), ready to hand to IncrementalCompletion
  /// so repair scoring charges slowed links their real cost.
  [[nodiscard]] std::vector<std::int64_t> faulted_link_factors() const;

  /// The healthy component as a standalone compacted Custom topology
  /// (processors renumbered 0..H-1), with translation tables back to
  /// base ids. Used by the full-remap rung, which runs the regular
  /// MAPPER pipeline on the shrunken machine.
  struct HealthySub {
    Topology topo;
    std::vector<int> to_base_proc;  ///< sub proc id -> base proc id
    std::vector<int> to_base_link;  ///< sub link id -> base link id
  };
  [[nodiscard]] HealthySub healthy_subtopology() const;

 private:
  const Topology* base_;
  FaultSpec spec_;
  std::vector<char> dead_proc_;          ///< per base proc
  std::vector<char> dead_link_;          ///< per base link (incl. links at dead procs)
  std::vector<std::int64_t> slowdown_;   ///< per base link, >= 1
  Topology faulted_;
  std::vector<int> fault_to_base_link_;
  std::vector<int> base_to_fault_link_;
  std::vector<int> healthy_procs_;
  std::vector<char> healthy_;
  int num_alive_procs_ = 0;
  bool fully_connected_ = false;
};

/// Rewrites a mapping computed on `sub.topo` (the compacted healthy
/// machine) into base processor and link ids.
[[nodiscard]] Mapping map_to_base(const FaultedTopology::HealthySub& sub,
                                  Mapping mapping);

}  // namespace oregami
