#include "oregami/arch/cayley_topology.hpp"

#include <algorithm>

#include "oregami/support/error.hpp"

namespace oregami {

Topology cayley_topology(const PermutationGroup& group, std::string name) {
  Graph links(static_cast<int>(group.order()));
  for (std::size_t a = 0; a < group.order(); ++a) {
    for (const std::size_t gen : group.generator_indices()) {
      const std::size_t b = group.compose(a, gen);
      if (a == b) {
        continue;  // identity generator adds nothing
      }
      if (!links.has_edge(static_cast<int>(a), static_cast<int>(b))) {
        links.add_edge(static_cast<int>(a), static_cast<int>(b));
      }
    }
  }
  return Topology::custom(std::move(name), std::move(links));
}

namespace {

PermutationGroup symmetric_group(int n,
                                 std::vector<Permutation> generators) {
  long order = 1;
  for (int i = 2; i <= n; ++i) {
    order *= i;
  }
  auto group = PermutationGroup::generate(
      generators, static_cast<std::size_t>(order));
  OREGAMI_ASSERT(group.has_value() &&
                     group->order() == static_cast<std::size_t>(order),
                 "generators must generate the full symmetric group");
  return *group;
}

}  // namespace

Topology star_graph_network(int n) {
  OREGAMI_ASSERT(n >= 2 && n <= 6, "star graph size out of range");
  std::vector<Permutation> generators;
  for (int i = 1; i < n; ++i) {
    std::vector<int> image(static_cast<std::size_t>(n));
    for (int x = 0; x < n; ++x) {
      image[static_cast<std::size_t>(x)] = x;
    }
    std::swap(image[0], image[static_cast<std::size_t>(i)]);
    generators.emplace_back(std::move(image));
  }
  return cayley_topology(symmetric_group(n, std::move(generators)),
                         "star-graph(" + std::to_string(n) + ")");
}

Topology pancake_network(int n) {
  OREGAMI_ASSERT(n >= 2 && n <= 6, "pancake graph size out of range");
  std::vector<Permutation> generators;
  for (int len = 2; len <= n; ++len) {
    std::vector<int> image(static_cast<std::size_t>(n));
    for (int x = 0; x < n; ++x) {
      image[static_cast<std::size_t>(x)] = x < len ? len - 1 - x : x;
    }
    generators.emplace_back(std::move(image));
  }
  return cayley_topology(symmetric_group(n, std::move(generators)),
                         "pancake(" + std::to_string(n) + ")");
}

}  // namespace oregami
