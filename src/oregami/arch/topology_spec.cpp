#include "oregami/arch/topology_spec.hpp"

#include <vector>

#include "oregami/support/error.hpp"

namespace oregami {

namespace {

std::vector<int> parse_dims(const std::string& text,
                            const std::string& spec) {
  std::vector<int> dims;
  int value = 0;
  bool have_digit = false;
  for (const char c : text + "x") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have_digit = true;
    } else if (c == 'x') {
      if (!have_digit) {
        throw MappingError("bad topology spec '" + spec + "'\n" +
                           topology_spec_help());
      }
      dims.push_back(value);
      value = 0;
      have_digit = false;
    } else {
      throw MappingError("bad topology spec '" + spec + "'\n" +
                         topology_spec_help());
    }
  }
  return dims;
}

}  // namespace

Topology parse_topology_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    throw MappingError("bad topology spec '" + spec + "'\n" +
                       topology_spec_help());
  }
  const std::string family = spec.substr(0, colon);
  const auto dims = parse_dims(spec.substr(colon + 1), spec);
  auto expect_dims = [&](std::size_t count) {
    if (dims.size() != count) {
      throw MappingError("topology '" + family + "' expects " +
                         std::to_string(count) + " dimension(s)\n" +
                         topology_spec_help());
    }
  };
  if (family == "hypercube" || family == "cube") {
    expect_dims(1);
    return Topology::hypercube(dims[0]);
  }
  if (family == "mesh" || family == "grid") {
    expect_dims(2);
    return Topology::mesh(dims[0], dims[1]);
  }
  if (family == "torus") {
    expect_dims(2);
    return Topology::torus(dims[0], dims[1]);
  }
  if (family == "ring") {
    expect_dims(1);
    return Topology::ring(dims[0]);
  }
  if (family == "chain") {
    expect_dims(1);
    return Topology::chain(dims[0]);
  }
  if (family == "cbt" || family == "tree") {
    expect_dims(1);
    return Topology::complete_binary_tree(dims[0]);
  }
  if (family == "star") {
    expect_dims(1);
    return Topology::star(dims[0]);
  }
  if (family == "complete" || family == "clique") {
    expect_dims(1);
    return Topology::complete(dims[0]);
  }
  if (family == "butterfly") {
    expect_dims(1);
    return Topology::butterfly(dims[0]);
  }
  if (family == "mesh3d") {
    expect_dims(3);
    return Topology::mesh3d(dims[0], dims[1], dims[2]);
  }
  throw MappingError("unknown topology family '" + family + "'\n" +
                     topology_spec_help());
}

std::string topology_spec_help() {
  return "accepted topology specs:\n"
         "  hypercube:D   mesh:RxC    torus:RxC    ring:P    chain:P\n"
         "  cbt:LEVELS    star:P      complete:P   butterfly:K\n"
         "  mesh3d:XxYxZ";
}

}  // namespace oregami
