// Textual topology specifications for tools and configuration files:
//   "hypercube:3"   "mesh:4x4"   "torus:4x8"   "ring:8"   "chain:5"
//   "cbt:4"         "star:8"     "complete:6"  "butterfly:3"
//   "mesh3d:2x3x4"
#pragma once

#include <string>

#include "oregami/arch/topology.hpp"

namespace oregami {

/// Parses a spec string; throws MappingError with a usage hint on
/// malformed input.
[[nodiscard]] Topology parse_topology_spec(const std::string& spec);

/// The list of accepted forms (for usage/help text).
[[nodiscard]] std::string topology_spec_help();

}  // namespace oregami
