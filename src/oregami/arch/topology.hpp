// Interconnection-network models (paper §1: "homogeneous processors
// connected by some regular network topology" -- iPSC/2, NCUBE,
// Transputer class machines).
//
// A Topology is an undirected link graph over processors [0, P), plus
// family metadata (so canned mappings and dimension-order routing can
// exploit structure) and a lazily cached all-pairs hop-distance table.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "oregami/graph/graph.hpp"

namespace oregami {

enum class TopoFamily {
  Custom,
  Ring,
  Chain,
  Mesh,     ///< shape {rows, cols}
  Torus,    ///< shape {rows, cols}
  Hypercube,///< shape {dim}
  CompleteBinaryTree,  ///< shape {levels}
  Star,
  Complete,
  Butterfly,  ///< shape {k}: (k+1) ranks of 2^k switches
  Mesh3D,     ///< shape {nx, ny, nz}
};

[[nodiscard]] std::string to_string(TopoFamily family);

class Topology {
 public:
  /// Factories for the regular networks OREGAMI targets.
  static Topology ring(int p);
  static Topology chain(int p);
  static Topology mesh(int rows, int cols);
  static Topology torus(int rows, int cols);
  static Topology hypercube(int dim);
  static Topology complete_binary_tree(int levels);
  static Topology star(int p);
  static Topology complete(int p);
  static Topology butterfly(int k);
  static Topology mesh3d(int nx, int ny, int nz);

  /// An arbitrary processor graph (family = Custom).
  static Topology custom(std::string name, Graph links);

  [[nodiscard]] int num_procs() const { return links_.num_vertices(); }
  [[nodiscard]] int num_links() const { return links_.num_edges(); }
  [[nodiscard]] const Graph& graph() const { return links_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TopoFamily family() const { return family_; }
  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }

  /// Link id joining processors u and v, or nullopt when not adjacent.
  [[nodiscard]] std::optional<int> link_between(int u, int v) const;

  /// Endpoints of link `l` (normalised u < v).
  [[nodiscard]] std::pair<int, int> link_endpoints(int l) const;

  /// Hop distance (BFS), cached one source row at a time.
  [[nodiscard]] int distance(int u, int v) const;

  /// Full distance row from `u` (cached).
  [[nodiscard]] const std::vector<int>& distance_row(int u) const;

  /// Fills every row of the distance cache. After this returns, all
  /// const queries (distance, distance_row, diameter) only read the
  /// cache and are safe to call concurrently from multiple threads --
  /// the portfolio mapper calls this once before fanning candidates
  /// out to its thread pool.
  void precompute_distances() const;

  [[nodiscard]] int diameter() const;

  /// Human label for a processor: plain index, mesh coordinates
  /// "(r,c)", or binary address for hypercubes.
  [[nodiscard]] std::string proc_label(int p) const;

  /// Mesh/torus row-col coordinates of p. Requires a 2-D family.
  [[nodiscard]] std::pair<int, int> coords2d(int p) const;

  /// Processor at mesh/torus coordinates (r, c).
  [[nodiscard]] int at2d(int r, int c) const;

 private:
  Topology(std::string name, TopoFamily family, std::vector<int> shape,
           Graph links);

  std::string name_;
  TopoFamily family_;
  std::vector<int> shape_;
  Graph links_;
  // Lazy per-source distance cache; mutable because distance queries
  // are logically const. Lazy filling is not thread-safe; call
  // precompute_distances() before sharing a Topology across threads.
  mutable std::vector<std::vector<int>> dist_rows_;
};

}  // namespace oregami
