// Interconnection-network models (paper §1: "homogeneous processors
// connected by some regular network topology" -- iPSC/2, NCUBE,
// Transputer class machines).
//
// A Topology is an undirected link graph over processors [0, P), plus
// family metadata (so canned mappings and dimension-order routing can
// exploit structure). Hop distances come from closed-form O(1) oracles
// for every regular family (index arithmetic, per-axis Manhattan,
// popcount, LCA depth, butterfly rank arithmetic); only Custom
// topologies fall back to a BFS all-pairs table, stored as one flat
// row-major allocation and filled exactly once under std::call_once.
// Every const distance query is therefore allocation-free and safe to
// call concurrently from multiple threads.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "oregami/graph/graph.hpp"

namespace oregami {

enum class TopoFamily {
  Custom,
  Ring,
  Chain,
  Mesh,     ///< shape {rows, cols}
  Torus,    ///< shape {rows, cols}
  Hypercube,///< shape {dim}
  CompleteBinaryTree,  ///< shape {levels}
  Star,
  Complete,
  Butterfly,  ///< shape {k}: (k+1) ranks of 2^k switches
  Mesh3D,     ///< shape {nx, ny, nz}
};

[[nodiscard]] std::string to_string(TopoFamily family);

class Topology;

/// View of one source row of the hop-distance matrix. For Custom
/// topologies it points straight into the flat BFS table; for regular
/// families each access evaluates the closed-form oracle. Cheap to
/// copy, valid as long as the Topology it came from.
class DistanceRow {
 public:
  [[nodiscard]] int operator[](int v) const;
  [[nodiscard]] int operator[](std::size_t v) const {
    return (*this)[static_cast<int>(v)];
  }
  [[nodiscard]] int source() const { return u_; }

 private:
  friend class Topology;
  DistanceRow(const Topology& topo, int u, const int* row)
      : topo_(&topo), u_(u), row_(row) {}

  const Topology* topo_;
  int u_;
  const int* row_;  ///< flat table row (Custom) or nullptr (closed form)
};

class Topology {
 public:
  /// Factories for the regular networks OREGAMI targets.
  static Topology ring(int p);
  static Topology chain(int p);
  static Topology mesh(int rows, int cols);
  static Topology torus(int rows, int cols);
  static Topology hypercube(int dim);
  static Topology complete_binary_tree(int levels);
  static Topology star(int p);
  static Topology complete(int p);
  static Topology butterfly(int k);
  static Topology mesh3d(int nx, int ny, int nz);

  /// An arbitrary processor graph (family = Custom).
  static Topology custom(std::string name, Graph links);

  [[nodiscard]] int num_procs() const { return links_.num_vertices(); }
  [[nodiscard]] int num_links() const { return links_.num_edges(); }
  [[nodiscard]] const Graph& graph() const { return links_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TopoFamily family() const { return family_; }
  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }

  /// Link id joining processors u and v, or nullopt when not adjacent.
  [[nodiscard]] std::optional<int> link_between(int u, int v) const;

  /// Endpoints of link `l` (normalised u < v).
  [[nodiscard]] std::pair<int, int> link_endpoints(int l) const;

  /// Hop distance: closed-form O(1) for every regular family, flat BFS
  /// table lookup for Custom (filled once, thread-safely). For a
  /// disconnected Custom topology unreachable pairs report -1, matching
  /// bfs_distances().
  [[nodiscard]] int distance(int u, int v) const;

  /// Distance row view from `u` (see DistanceRow).
  [[nodiscard]] DistanceRow distance_row(int u) const;

  /// Forces the Custom BFS table to be built now (no-op for regular
  /// families, whose oracles never allocate). Purely an optional
  /// warm-up: all const distance queries are thread-safe without it --
  /// the Custom fill is guarded by std::call_once.
  void precompute_distances() const;

  [[nodiscard]] int diameter() const;

  /// Human label for a processor: plain index, mesh coordinates
  /// "(r,c)", or binary address for hypercubes.
  [[nodiscard]] std::string proc_label(int p) const;

  /// Mesh/torus row-col coordinates of p. Requires a 2-D family.
  [[nodiscard]] std::pair<int, int> coords2d(int p) const;

  /// Processor at mesh/torus coordinates (r, c).
  [[nodiscard]] int at2d(int r, int c) const;

 private:
  Topology(std::string name, TopoFamily family, std::vector<int> shape,
           Graph links);

  /// Custom-family lazy state: one flat row-major P*P table, built
  /// exactly once. Held by shared_ptr so copies of a Topology share the
  /// (immutable-once-published) table instead of re-running BFS.
  struct CustomDistances {
    std::once_flag once;
    std::vector<int> flat;  ///< row-major, flat[u * P + v]
    int min_entry = 0;      ///< < 0 iff the graph is disconnected
    int diameter = 0;
  };

  [[nodiscard]] const CustomDistances& custom_distances() const;

  std::string name_;
  TopoFamily family_;
  std::vector<int> shape_;
  Graph links_;
  // Allocated only for Custom; mutable because the once-fill happens
  // behind logically-const distance queries.
  mutable std::shared_ptr<CustomDistances> custom_dist_;
};

inline int DistanceRow::operator[](int v) const {
  return row_ != nullptr ? row_[v] : topo_->distance(u_, v);
}

}  // namespace oregami
