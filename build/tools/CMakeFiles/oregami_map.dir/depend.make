# Empty dependencies file for oregami_map.
# This may be replaced when dependencies are built.
