file(REMOVE_RECURSE
  "CMakeFiles/oregami_map.dir/oregami_map.cpp.o"
  "CMakeFiles/oregami_map.dir/oregami_map.cpp.o.d"
  "oregami_map"
  "oregami_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
