file(REMOVE_RECURSE
  "CMakeFiles/test_aggregation.dir/test_aggregation.cpp.o"
  "CMakeFiles/test_aggregation.dir/test_aggregation.cpp.o.d"
  "test_aggregation"
  "test_aggregation.pdb"
  "test_aggregation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
