file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_spawn.dir/test_dynamic_spawn.cpp.o"
  "CMakeFiles/test_dynamic_spawn.dir/test_dynamic_spawn.cpp.o.d"
  "test_dynamic_spawn"
  "test_dynamic_spawn.pdb"
  "test_dynamic_spawn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
