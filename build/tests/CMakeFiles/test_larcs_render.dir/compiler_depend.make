# Empty compiler generated dependencies file for test_larcs_render.
# This may be replaced when dependencies are built.
