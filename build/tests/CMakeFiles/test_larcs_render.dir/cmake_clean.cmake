file(REMOVE_RECURSE
  "CMakeFiles/test_larcs_render.dir/test_larcs_render.cpp.o"
  "CMakeFiles/test_larcs_render.dir/test_larcs_render.cpp.o.d"
  "test_larcs_render"
  "test_larcs_render.pdb"
  "test_larcs_render[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_larcs_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
