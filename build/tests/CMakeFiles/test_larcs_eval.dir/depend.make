# Empty dependencies file for test_larcs_eval.
# This may be replaced when dependencies are built.
