file(REMOVE_RECURSE
  "CMakeFiles/test_larcs_eval.dir/test_larcs_eval.cpp.o"
  "CMakeFiles/test_larcs_eval.dir/test_larcs_eval.cpp.o.d"
  "test_larcs_eval"
  "test_larcs_eval.pdb"
  "test_larcs_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_larcs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
