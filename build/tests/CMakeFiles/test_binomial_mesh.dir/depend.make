# Empty dependencies file for test_binomial_mesh.
# This may be replaced when dependencies are built.
