file(REMOVE_RECURSE
  "CMakeFiles/test_binomial_mesh.dir/test_binomial_mesh.cpp.o"
  "CMakeFiles/test_binomial_mesh.dir/test_binomial_mesh.cpp.o.d"
  "test_binomial_mesh"
  "test_binomial_mesh.pdb"
  "test_binomial_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binomial_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
