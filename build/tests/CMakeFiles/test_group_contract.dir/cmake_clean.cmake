file(REMOVE_RECURSE
  "CMakeFiles/test_group_contract.dir/test_group_contract.cpp.o"
  "CMakeFiles/test_group_contract.dir/test_group_contract.cpp.o.d"
  "test_group_contract"
  "test_group_contract.pdb"
  "test_group_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
