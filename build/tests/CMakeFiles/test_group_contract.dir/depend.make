# Empty dependencies file for test_group_contract.
# This may be replaced when dependencies are built.
