file(REMOVE_RECURSE
  "CMakeFiles/test_blossom.dir/test_blossom.cpp.o"
  "CMakeFiles/test_blossom.dir/test_blossom.cpp.o.d"
  "test_blossom"
  "test_blossom.pdb"
  "test_blossom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blossom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
