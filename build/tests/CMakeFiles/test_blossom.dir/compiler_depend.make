# Empty compiler generated dependencies file for test_blossom.
# This may be replaced when dependencies are built.
