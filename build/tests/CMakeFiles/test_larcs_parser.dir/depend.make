# Empty dependencies file for test_larcs_parser.
# This may be replaced when dependencies are built.
