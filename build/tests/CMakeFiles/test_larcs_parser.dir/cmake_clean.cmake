file(REMOVE_RECURSE
  "CMakeFiles/test_larcs_parser.dir/test_larcs_parser.cpp.o"
  "CMakeFiles/test_larcs_parser.dir/test_larcs_parser.cpp.o.d"
  "test_larcs_parser"
  "test_larcs_parser.pdb"
  "test_larcs_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_larcs_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
