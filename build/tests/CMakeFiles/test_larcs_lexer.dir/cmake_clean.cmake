file(REMOVE_RECURSE
  "CMakeFiles/test_larcs_lexer.dir/test_larcs_lexer.cpp.o"
  "CMakeFiles/test_larcs_lexer.dir/test_larcs_lexer.cpp.o.d"
  "test_larcs_lexer"
  "test_larcs_lexer.pdb"
  "test_larcs_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_larcs_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
