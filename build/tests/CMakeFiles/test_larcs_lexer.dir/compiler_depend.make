# Empty compiler generated dependencies file for test_larcs_lexer.
# This may be replaced when dependencies are built.
