# Empty dependencies file for test_recognize.
# This may be replaced when dependencies are built.
