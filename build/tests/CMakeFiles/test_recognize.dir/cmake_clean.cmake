file(REMOVE_RECURSE
  "CMakeFiles/test_recognize.dir/test_recognize.cpp.o"
  "CMakeFiles/test_recognize.dir/test_recognize.cpp.o.d"
  "test_recognize"
  "test_recognize.pdb"
  "test_recognize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recognize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
