file(REMOVE_RECURSE
  "CMakeFiles/test_canned.dir/test_canned.cpp.o"
  "CMakeFiles/test_canned.dir/test_canned.cpp.o.d"
  "test_canned"
  "test_canned.pdb"
  "test_canned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
