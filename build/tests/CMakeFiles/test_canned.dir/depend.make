# Empty dependencies file for test_canned.
# This may be replaced when dependencies are built.
