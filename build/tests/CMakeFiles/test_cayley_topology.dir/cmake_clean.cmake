file(REMOVE_RECURSE
  "CMakeFiles/test_cayley_topology.dir/test_cayley_topology.cpp.o"
  "CMakeFiles/test_cayley_topology.dir/test_cayley_topology.cpp.o.d"
  "test_cayley_topology"
  "test_cayley_topology.pdb"
  "test_cayley_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cayley_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
