# Empty dependencies file for test_cayley_topology.
# This may be replaced when dependencies are built.
