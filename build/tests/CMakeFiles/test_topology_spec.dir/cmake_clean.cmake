file(REMOVE_RECURSE
  "CMakeFiles/test_topology_spec.dir/test_topology_spec.cpp.o"
  "CMakeFiles/test_topology_spec.dir/test_topology_spec.cpp.o.d"
  "test_topology_spec"
  "test_topology_spec.pdb"
  "test_topology_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
