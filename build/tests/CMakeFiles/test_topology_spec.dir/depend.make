# Empty dependencies file for test_topology_spec.
# This may be replaced when dependencies are built.
