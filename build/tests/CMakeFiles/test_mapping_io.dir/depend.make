# Empty dependencies file for test_mapping_io.
# This may be replaced when dependencies are built.
