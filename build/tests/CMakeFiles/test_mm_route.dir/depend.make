# Empty dependencies file for test_mm_route.
# This may be replaced when dependencies are built.
