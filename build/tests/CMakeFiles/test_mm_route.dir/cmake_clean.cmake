file(REMOVE_RECURSE
  "CMakeFiles/test_mm_route.dir/test_mm_route.cpp.o"
  "CMakeFiles/test_mm_route.dir/test_mm_route.cpp.o.d"
  "test_mm_route"
  "test_mm_route.pdb"
  "test_mm_route[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mm_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
