# Empty compiler generated dependencies file for test_cbt_mesh.
# This may be replaced when dependencies are built.
