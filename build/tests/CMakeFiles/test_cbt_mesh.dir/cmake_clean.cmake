file(REMOVE_RECURSE
  "CMakeFiles/test_cbt_mesh.dir/test_cbt_mesh.cpp.o"
  "CMakeFiles/test_cbt_mesh.dir/test_cbt_mesh.cpp.o.d"
  "test_cbt_mesh"
  "test_cbt_mesh.pdb"
  "test_cbt_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbt_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
