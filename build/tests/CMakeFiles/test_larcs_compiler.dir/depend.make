# Empty dependencies file for test_larcs_compiler.
# This may be replaced when dependencies are built.
