file(REMOVE_RECURSE
  "CMakeFiles/test_larcs_compiler.dir/test_larcs_compiler.cpp.o"
  "CMakeFiles/test_larcs_compiler.dir/test_larcs_compiler.cpp.o.d"
  "test_larcs_compiler"
  "test_larcs_compiler.pdb"
  "test_larcs_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_larcs_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
