# Empty dependencies file for test_larcs_affine.
# This may be replaced when dependencies are built.
