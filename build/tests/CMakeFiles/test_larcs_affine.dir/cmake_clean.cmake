file(REMOVE_RECURSE
  "CMakeFiles/test_larcs_affine.dir/test_larcs_affine.cpp.o"
  "CMakeFiles/test_larcs_affine.dir/test_larcs_affine.cpp.o.d"
  "test_larcs_affine"
  "test_larcs_affine.pdb"
  "test_larcs_affine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_larcs_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
