file(REMOVE_RECURSE
  "CMakeFiles/test_nn_embed.dir/test_nn_embed.cpp.o"
  "CMakeFiles/test_nn_embed.dir/test_nn_embed.cpp.o.d"
  "test_nn_embed"
  "test_nn_embed.pdb"
  "test_nn_embed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
