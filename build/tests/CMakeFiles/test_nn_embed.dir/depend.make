# Empty dependencies file for test_nn_embed.
# This may be replaced when dependencies are built.
