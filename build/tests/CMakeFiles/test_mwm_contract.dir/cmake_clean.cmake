file(REMOVE_RECURSE
  "CMakeFiles/test_mwm_contract.dir/test_mwm_contract.cpp.o"
  "CMakeFiles/test_mwm_contract.dir/test_mwm_contract.cpp.o.d"
  "test_mwm_contract"
  "test_mwm_contract.pdb"
  "test_mwm_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mwm_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
