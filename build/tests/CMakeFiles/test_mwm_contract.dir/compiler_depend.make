# Empty compiler generated dependencies file for test_mwm_contract.
# This may be replaced when dependencies are built.
