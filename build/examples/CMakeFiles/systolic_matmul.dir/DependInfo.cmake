
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/systolic_matmul.cpp" "examples/CMakeFiles/systolic_matmul.dir/systolic_matmul.cpp.o" "gcc" "examples/CMakeFiles/systolic_matmul.dir/systolic_matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oregami_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_larcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_cost_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_group.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
