# Empty compiler generated dependencies file for divide_conquer_mesh.
# This may be replaced when dependencies are built.
