file(REMOVE_RECURSE
  "CMakeFiles/divide_conquer_mesh.dir/divide_conquer_mesh.cpp.o"
  "CMakeFiles/divide_conquer_mesh.dir/divide_conquer_mesh.cpp.o.d"
  "divide_conquer_mesh"
  "divide_conquer_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divide_conquer_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
