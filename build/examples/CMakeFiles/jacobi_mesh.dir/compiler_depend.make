# Empty compiler generated dependencies file for jacobi_mesh.
# This may be replaced when dependencies are built.
