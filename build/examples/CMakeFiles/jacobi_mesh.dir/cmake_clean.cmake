file(REMOVE_RECURSE
  "CMakeFiles/jacobi_mesh.dir/jacobi_mesh.cpp.o"
  "CMakeFiles/jacobi_mesh.dir/jacobi_mesh.cpp.o.d"
  "jacobi_mesh"
  "jacobi_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
