# Empty dependencies file for leader_election_group.
# This may be replaced when dependencies are built.
