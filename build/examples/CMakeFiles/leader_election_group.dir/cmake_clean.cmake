file(REMOVE_RECURSE
  "CMakeFiles/leader_election_group.dir/leader_election_group.cpp.o"
  "CMakeFiles/leader_election_group.dir/leader_election_group.cpp.o.d"
  "leader_election_group"
  "leader_election_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_election_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
