file(REMOVE_RECURSE
  "CMakeFiles/nbody_hypercube.dir/nbody_hypercube.cpp.o"
  "CMakeFiles/nbody_hypercube.dir/nbody_hypercube.cpp.o.d"
  "nbody_hypercube"
  "nbody_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
