# Empty compiler generated dependencies file for nbody_hypercube.
# This may be replaced when dependencies are built.
