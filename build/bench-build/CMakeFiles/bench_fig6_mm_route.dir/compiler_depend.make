# Empty compiler generated dependencies file for bench_fig6_mm_route.
# This may be replaced when dependencies are built.
