file(REMOVE_RECURSE
  "../bench/bench_fig6_mm_route"
  "../bench/bench_fig6_mm_route.pdb"
  "CMakeFiles/bench_fig6_mm_route.dir/bench_fig6_mm_route.cpp.o"
  "CMakeFiles/bench_fig6_mm_route.dir/bench_fig6_mm_route.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mm_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
