file(REMOVE_RECURSE
  "../bench/bench_sim_validation"
  "../bench/bench_sim_validation.pdb"
  "CMakeFiles/bench_sim_validation.dir/bench_sim_validation.cpp.o"
  "CMakeFiles/bench_sim_validation.dir/bench_sim_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
