file(REMOVE_RECURSE
  "../bench/bench_fig5_mwm_contract"
  "../bench/bench_fig5_mwm_contract.pdb"
  "CMakeFiles/bench_fig5_mwm_contract.dir/bench_fig5_mwm_contract.cpp.o"
  "CMakeFiles/bench_fig5_mwm_contract.dir/bench_fig5_mwm_contract.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mwm_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
