# Empty dependencies file for bench_fig5_mwm_contract.
# This may be replaced when dependencies are built.
