file(REMOVE_RECURSE
  "../bench/bench_mwm_quality"
  "../bench/bench_mwm_quality.pdb"
  "CMakeFiles/bench_mwm_quality.dir/bench_mwm_quality.cpp.o"
  "CMakeFiles/bench_mwm_quality.dir/bench_mwm_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mwm_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
