# Empty dependencies file for bench_routing_contention.
# This may be replaced when dependencies are built.
