file(REMOVE_RECURSE
  "../bench/bench_routing_contention"
  "../bench/bench_routing_contention.pdb"
  "CMakeFiles/bench_routing_contention.dir/bench_routing_contention.cpp.o"
  "CMakeFiles/bench_routing_contention.dir/bench_routing_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
