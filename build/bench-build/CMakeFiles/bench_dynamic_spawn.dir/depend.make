# Empty dependencies file for bench_dynamic_spawn.
# This may be replaced when dependencies are built.
