file(REMOVE_RECURSE
  "../bench/bench_dynamic_spawn"
  "../bench/bench_dynamic_spawn.pdb"
  "CMakeFiles/bench_dynamic_spawn.dir/bench_dynamic_spawn.cpp.o"
  "CMakeFiles/bench_dynamic_spawn.dir/bench_dynamic_spawn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
