# Empty compiler generated dependencies file for bench_fig4_group_contraction.
# This may be replaced when dependencies are built.
