file(REMOVE_RECURSE
  "../bench/bench_fig4_group_contraction"
  "../bench/bench_fig4_group_contraction.pdb"
  "CMakeFiles/bench_fig4_group_contraction.dir/bench_fig4_group_contraction.cpp.o"
  "CMakeFiles/bench_fig4_group_contraction.dir/bench_fig4_group_contraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_group_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
