# Empty dependencies file for bench_fig2_nbody_larcs.
# This may be replaced when dependencies are built.
