file(REMOVE_RECURSE
  "../bench/bench_fig2_nbody_larcs"
  "../bench/bench_fig2_nbody_larcs.pdb"
  "CMakeFiles/bench_fig2_nbody_larcs.dir/bench_fig2_nbody_larcs.cpp.o"
  "CMakeFiles/bench_fig2_nbody_larcs.dir/bench_fig2_nbody_larcs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_nbody_larcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
