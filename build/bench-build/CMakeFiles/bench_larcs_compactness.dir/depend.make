# Empty dependencies file for bench_larcs_compactness.
# This may be replaced when dependencies are built.
