file(REMOVE_RECURSE
  "../bench/bench_larcs_compactness"
  "../bench/bench_larcs_compactness.pdb"
  "CMakeFiles/bench_larcs_compactness.dir/bench_larcs_compactness.cpp.o"
  "CMakeFiles/bench_larcs_compactness.dir/bench_larcs_compactness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_larcs_compactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
