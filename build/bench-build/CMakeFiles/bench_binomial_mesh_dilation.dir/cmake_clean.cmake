file(REMOVE_RECURSE
  "../bench/bench_binomial_mesh_dilation"
  "../bench/bench_binomial_mesh_dilation.pdb"
  "CMakeFiles/bench_binomial_mesh_dilation.dir/bench_binomial_mesh_dilation.cpp.o"
  "CMakeFiles/bench_binomial_mesh_dilation.dir/bench_binomial_mesh_dilation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binomial_mesh_dilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
