# Empty dependencies file for bench_binomial_mesh_dilation.
# This may be replaced when dependencies are built.
