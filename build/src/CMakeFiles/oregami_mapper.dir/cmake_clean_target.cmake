file(REMOVE_RECURSE
  "liboregami_mapper.a"
)
