
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oregami/mapper/aggregation.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/aggregation.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/aggregation.cpp.o.d"
  "/root/repo/src/oregami/mapper/baselines.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/baselines.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/baselines.cpp.o.d"
  "/root/repo/src/oregami/mapper/binomial_mesh.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/binomial_mesh.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/binomial_mesh.cpp.o.d"
  "/root/repo/src/oregami/mapper/canned.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/canned.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/canned.cpp.o.d"
  "/root/repo/src/oregami/mapper/cbt_mesh.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/cbt_mesh.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/cbt_mesh.cpp.o.d"
  "/root/repo/src/oregami/mapper/driver.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/driver.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/driver.cpp.o.d"
  "/root/repo/src/oregami/mapper/dynamic_spawn.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/dynamic_spawn.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/dynamic_spawn.cpp.o.d"
  "/root/repo/src/oregami/mapper/group_contract.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/group_contract.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/group_contract.cpp.o.d"
  "/root/repo/src/oregami/mapper/migration.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/migration.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/migration.cpp.o.d"
  "/root/repo/src/oregami/mapper/mm_route.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/mm_route.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/mm_route.cpp.o.d"
  "/root/repo/src/oregami/mapper/mwm_contract.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/mwm_contract.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/mwm_contract.cpp.o.d"
  "/root/repo/src/oregami/mapper/nn_embed.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/nn_embed.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/nn_embed.cpp.o.d"
  "/root/repo/src/oregami/mapper/paper_examples.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/paper_examples.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/paper_examples.cpp.o.d"
  "/root/repo/src/oregami/mapper/refine.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/refine.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/refine.cpp.o.d"
  "/root/repo/src/oregami/mapper/systolic.cpp" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/systolic.cpp.o" "gcc" "src/CMakeFiles/oregami_mapper.dir/oregami/mapper/systolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oregami_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_group.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_larcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_cost_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
