file(REMOVE_RECURSE
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/aggregation.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/aggregation.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/baselines.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/baselines.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/binomial_mesh.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/binomial_mesh.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/canned.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/canned.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/cbt_mesh.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/cbt_mesh.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/driver.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/driver.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/dynamic_spawn.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/dynamic_spawn.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/group_contract.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/group_contract.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/migration.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/migration.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/mm_route.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/mm_route.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/mwm_contract.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/mwm_contract.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/nn_embed.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/nn_embed.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/paper_examples.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/paper_examples.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/refine.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/refine.cpp.o.d"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/systolic.cpp.o"
  "CMakeFiles/oregami_mapper.dir/oregami/mapper/systolic.cpp.o.d"
  "liboregami_mapper.a"
  "liboregami_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
