# Empty dependencies file for oregami_mapper.
# This may be replaced when dependencies are built.
