file(REMOVE_RECURSE
  "liboregami_schedule.a"
)
