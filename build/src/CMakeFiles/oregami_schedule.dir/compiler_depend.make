# Empty compiler generated dependencies file for oregami_schedule.
# This may be replaced when dependencies are built.
