file(REMOVE_RECURSE
  "CMakeFiles/oregami_schedule.dir/oregami/schedule/synchrony.cpp.o"
  "CMakeFiles/oregami_schedule.dir/oregami/schedule/synchrony.cpp.o.d"
  "liboregami_schedule.a"
  "liboregami_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
