file(REMOVE_RECURSE
  "CMakeFiles/oregami_support.dir/oregami/support/error.cpp.o"
  "CMakeFiles/oregami_support.dir/oregami/support/error.cpp.o.d"
  "CMakeFiles/oregami_support.dir/oregami/support/rng.cpp.o"
  "CMakeFiles/oregami_support.dir/oregami/support/rng.cpp.o.d"
  "CMakeFiles/oregami_support.dir/oregami/support/text_table.cpp.o"
  "CMakeFiles/oregami_support.dir/oregami/support/text_table.cpp.o.d"
  "liboregami_support.a"
  "liboregami_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
