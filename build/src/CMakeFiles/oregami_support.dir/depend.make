# Empty dependencies file for oregami_support.
# This may be replaced when dependencies are built.
