file(REMOVE_RECURSE
  "liboregami_support.a"
)
