
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oregami/support/error.cpp" "src/CMakeFiles/oregami_support.dir/oregami/support/error.cpp.o" "gcc" "src/CMakeFiles/oregami_support.dir/oregami/support/error.cpp.o.d"
  "/root/repo/src/oregami/support/rng.cpp" "src/CMakeFiles/oregami_support.dir/oregami/support/rng.cpp.o" "gcc" "src/CMakeFiles/oregami_support.dir/oregami/support/rng.cpp.o.d"
  "/root/repo/src/oregami/support/text_table.cpp" "src/CMakeFiles/oregami_support.dir/oregami/support/text_table.cpp.o" "gcc" "src/CMakeFiles/oregami_support.dir/oregami/support/text_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
