file(REMOVE_RECURSE
  "liboregami_arch.a"
)
