# Empty dependencies file for oregami_arch.
# This may be replaced when dependencies are built.
