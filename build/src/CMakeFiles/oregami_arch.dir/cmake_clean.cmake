file(REMOVE_RECURSE
  "CMakeFiles/oregami_arch.dir/oregami/arch/cayley_topology.cpp.o"
  "CMakeFiles/oregami_arch.dir/oregami/arch/cayley_topology.cpp.o.d"
  "CMakeFiles/oregami_arch.dir/oregami/arch/routes.cpp.o"
  "CMakeFiles/oregami_arch.dir/oregami/arch/routes.cpp.o.d"
  "CMakeFiles/oregami_arch.dir/oregami/arch/topology.cpp.o"
  "CMakeFiles/oregami_arch.dir/oregami/arch/topology.cpp.o.d"
  "CMakeFiles/oregami_arch.dir/oregami/arch/topology_spec.cpp.o"
  "CMakeFiles/oregami_arch.dir/oregami/arch/topology_spec.cpp.o.d"
  "liboregami_arch.a"
  "liboregami_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
