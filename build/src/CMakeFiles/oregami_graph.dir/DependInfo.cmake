
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oregami/graph/blossom.cpp" "src/CMakeFiles/oregami_graph.dir/oregami/graph/blossom.cpp.o" "gcc" "src/CMakeFiles/oregami_graph.dir/oregami/graph/blossom.cpp.o.d"
  "/root/repo/src/oregami/graph/graph.cpp" "src/CMakeFiles/oregami_graph.dir/oregami/graph/graph.cpp.o" "gcc" "src/CMakeFiles/oregami_graph.dir/oregami/graph/graph.cpp.o.d"
  "/root/repo/src/oregami/graph/gray_code.cpp" "src/CMakeFiles/oregami_graph.dir/oregami/graph/gray_code.cpp.o" "gcc" "src/CMakeFiles/oregami_graph.dir/oregami/graph/gray_code.cpp.o.d"
  "/root/repo/src/oregami/graph/matching.cpp" "src/CMakeFiles/oregami_graph.dir/oregami/graph/matching.cpp.o" "gcc" "src/CMakeFiles/oregami_graph.dir/oregami/graph/matching.cpp.o.d"
  "/root/repo/src/oregami/graph/shortest_paths.cpp" "src/CMakeFiles/oregami_graph.dir/oregami/graph/shortest_paths.cpp.o" "gcc" "src/CMakeFiles/oregami_graph.dir/oregami/graph/shortest_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oregami_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
