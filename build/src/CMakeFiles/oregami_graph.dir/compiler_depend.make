# Empty compiler generated dependencies file for oregami_graph.
# This may be replaced when dependencies are built.
