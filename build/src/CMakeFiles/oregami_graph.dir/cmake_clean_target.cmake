file(REMOVE_RECURSE
  "liboregami_graph.a"
)
