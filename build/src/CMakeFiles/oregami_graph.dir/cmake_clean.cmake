file(REMOVE_RECURSE
  "CMakeFiles/oregami_graph.dir/oregami/graph/blossom.cpp.o"
  "CMakeFiles/oregami_graph.dir/oregami/graph/blossom.cpp.o.d"
  "CMakeFiles/oregami_graph.dir/oregami/graph/graph.cpp.o"
  "CMakeFiles/oregami_graph.dir/oregami/graph/graph.cpp.o.d"
  "CMakeFiles/oregami_graph.dir/oregami/graph/gray_code.cpp.o"
  "CMakeFiles/oregami_graph.dir/oregami/graph/gray_code.cpp.o.d"
  "CMakeFiles/oregami_graph.dir/oregami/graph/matching.cpp.o"
  "CMakeFiles/oregami_graph.dir/oregami/graph/matching.cpp.o.d"
  "CMakeFiles/oregami_graph.dir/oregami/graph/shortest_paths.cpp.o"
  "CMakeFiles/oregami_graph.dir/oregami/graph/shortest_paths.cpp.o.d"
  "liboregami_graph.a"
  "liboregami_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
