# Empty dependencies file for oregami_sim.
# This may be replaced when dependencies are built.
