file(REMOVE_RECURSE
  "liboregami_sim.a"
)
