file(REMOVE_RECURSE
  "CMakeFiles/oregami_sim.dir/oregami/sim/network_sim.cpp.o"
  "CMakeFiles/oregami_sim.dir/oregami/sim/network_sim.cpp.o.d"
  "liboregami_sim.a"
  "liboregami_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
