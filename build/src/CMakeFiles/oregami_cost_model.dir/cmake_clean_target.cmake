file(REMOVE_RECURSE
  "liboregami_cost_model.a"
)
