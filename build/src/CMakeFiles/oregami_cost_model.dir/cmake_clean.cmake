file(REMOVE_RECURSE
  "CMakeFiles/oregami_cost_model.dir/oregami/metrics/completion_model.cpp.o"
  "CMakeFiles/oregami_cost_model.dir/oregami/metrics/completion_model.cpp.o.d"
  "liboregami_cost_model.a"
  "liboregami_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
