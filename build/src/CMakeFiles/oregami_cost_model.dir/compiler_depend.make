# Empty compiler generated dependencies file for oregami_cost_model.
# This may be replaced when dependencies are built.
