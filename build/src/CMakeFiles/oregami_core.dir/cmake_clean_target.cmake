file(REMOVE_RECURSE
  "liboregami_core.a"
)
