
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oregami/core/mapping.cpp" "src/CMakeFiles/oregami_core.dir/oregami/core/mapping.cpp.o" "gcc" "src/CMakeFiles/oregami_core.dir/oregami/core/mapping.cpp.o.d"
  "/root/repo/src/oregami/core/mapping_io.cpp" "src/CMakeFiles/oregami_core.dir/oregami/core/mapping_io.cpp.o" "gcc" "src/CMakeFiles/oregami_core.dir/oregami/core/mapping_io.cpp.o.d"
  "/root/repo/src/oregami/core/recognize.cpp" "src/CMakeFiles/oregami_core.dir/oregami/core/recognize.cpp.o" "gcc" "src/CMakeFiles/oregami_core.dir/oregami/core/recognize.cpp.o.d"
  "/root/repo/src/oregami/core/task_graph.cpp" "src/CMakeFiles/oregami_core.dir/oregami/core/task_graph.cpp.o" "gcc" "src/CMakeFiles/oregami_core.dir/oregami/core/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oregami_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
