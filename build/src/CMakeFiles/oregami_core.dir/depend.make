# Empty dependencies file for oregami_core.
# This may be replaced when dependencies are built.
