file(REMOVE_RECURSE
  "CMakeFiles/oregami_core.dir/oregami/core/mapping.cpp.o"
  "CMakeFiles/oregami_core.dir/oregami/core/mapping.cpp.o.d"
  "CMakeFiles/oregami_core.dir/oregami/core/mapping_io.cpp.o"
  "CMakeFiles/oregami_core.dir/oregami/core/mapping_io.cpp.o.d"
  "CMakeFiles/oregami_core.dir/oregami/core/recognize.cpp.o"
  "CMakeFiles/oregami_core.dir/oregami/core/recognize.cpp.o.d"
  "CMakeFiles/oregami_core.dir/oregami/core/task_graph.cpp.o"
  "CMakeFiles/oregami_core.dir/oregami/core/task_graph.cpp.o.d"
  "liboregami_core.a"
  "liboregami_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
