file(REMOVE_RECURSE
  "liboregami_metrics.a"
)
