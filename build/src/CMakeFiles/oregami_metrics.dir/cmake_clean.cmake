file(REMOVE_RECURSE
  "CMakeFiles/oregami_metrics.dir/oregami/metrics/metrics.cpp.o"
  "CMakeFiles/oregami_metrics.dir/oregami/metrics/metrics.cpp.o.d"
  "CMakeFiles/oregami_metrics.dir/oregami/metrics/render.cpp.o"
  "CMakeFiles/oregami_metrics.dir/oregami/metrics/render.cpp.o.d"
  "CMakeFiles/oregami_metrics.dir/oregami/metrics/session.cpp.o"
  "CMakeFiles/oregami_metrics.dir/oregami/metrics/session.cpp.o.d"
  "liboregami_metrics.a"
  "liboregami_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
