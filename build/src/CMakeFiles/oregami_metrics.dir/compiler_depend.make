# Empty compiler generated dependencies file for oregami_metrics.
# This may be replaced when dependencies are built.
