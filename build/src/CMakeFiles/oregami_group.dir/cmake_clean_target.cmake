file(REMOVE_RECURSE
  "liboregami_group.a"
)
