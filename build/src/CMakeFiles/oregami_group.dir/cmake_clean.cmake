file(REMOVE_RECURSE
  "CMakeFiles/oregami_group.dir/oregami/group/cayley.cpp.o"
  "CMakeFiles/oregami_group.dir/oregami/group/cayley.cpp.o.d"
  "CMakeFiles/oregami_group.dir/oregami/group/perm_group.cpp.o"
  "CMakeFiles/oregami_group.dir/oregami/group/perm_group.cpp.o.d"
  "CMakeFiles/oregami_group.dir/oregami/group/permutation.cpp.o"
  "CMakeFiles/oregami_group.dir/oregami/group/permutation.cpp.o.d"
  "liboregami_group.a"
  "liboregami_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
