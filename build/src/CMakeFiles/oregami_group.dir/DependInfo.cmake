
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oregami/group/cayley.cpp" "src/CMakeFiles/oregami_group.dir/oregami/group/cayley.cpp.o" "gcc" "src/CMakeFiles/oregami_group.dir/oregami/group/cayley.cpp.o.d"
  "/root/repo/src/oregami/group/perm_group.cpp" "src/CMakeFiles/oregami_group.dir/oregami/group/perm_group.cpp.o" "gcc" "src/CMakeFiles/oregami_group.dir/oregami/group/perm_group.cpp.o.d"
  "/root/repo/src/oregami/group/permutation.cpp" "src/CMakeFiles/oregami_group.dir/oregami/group/permutation.cpp.o" "gcc" "src/CMakeFiles/oregami_group.dir/oregami/group/permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oregami_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
