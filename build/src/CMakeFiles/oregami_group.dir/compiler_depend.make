# Empty compiler generated dependencies file for oregami_group.
# This may be replaced when dependencies are built.
