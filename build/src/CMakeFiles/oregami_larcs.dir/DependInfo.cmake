
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oregami/larcs/affine.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/affine.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/affine.cpp.o.d"
  "/root/repo/src/oregami/larcs/compiler.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/compiler.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/compiler.cpp.o.d"
  "/root/repo/src/oregami/larcs/expr_eval.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/expr_eval.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/expr_eval.cpp.o.d"
  "/root/repo/src/oregami/larcs/lexer.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/lexer.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/lexer.cpp.o.d"
  "/root/repo/src/oregami/larcs/parser.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/parser.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/parser.cpp.o.d"
  "/root/repo/src/oregami/larcs/phase_expr.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/phase_expr.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/phase_expr.cpp.o.d"
  "/root/repo/src/oregami/larcs/programs.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/programs.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/programs.cpp.o.d"
  "/root/repo/src/oregami/larcs/render.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/render.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/render.cpp.o.d"
  "/root/repo/src/oregami/larcs/token.cpp" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/token.cpp.o" "gcc" "src/CMakeFiles/oregami_larcs.dir/oregami/larcs/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oregami_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oregami_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
