file(REMOVE_RECURSE
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/affine.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/affine.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/compiler.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/compiler.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/expr_eval.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/expr_eval.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/lexer.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/lexer.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/parser.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/parser.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/phase_expr.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/phase_expr.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/programs.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/programs.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/render.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/render.cpp.o.d"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/token.cpp.o"
  "CMakeFiles/oregami_larcs.dir/oregami/larcs/token.cpp.o.d"
  "liboregami_larcs.a"
  "liboregami_larcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oregami_larcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
