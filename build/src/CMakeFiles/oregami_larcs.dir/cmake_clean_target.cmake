file(REMOVE_RECURSE
  "liboregami_larcs.a"
)
