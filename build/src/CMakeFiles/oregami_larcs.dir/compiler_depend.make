# Empty compiler generated dependencies file for oregami_larcs.
# This may be replaced when dependencies are built.
