#!/usr/bin/env python3
"""Validate and normalise oregami_serve result streams.

Dependency-free (stdlib only). Validates that every line of a server
result stream is a well-formed result object (ok results carry the full
objective triple and a 16-hex digest; error results carry a contract
code 1-6, and code-5 rejections may carry a "retry_after_ms" backoff
hint), and optionally writes a normalised copy for byte comparison
across runs and --jobs values: lines sorted by id, the volatile
"wall_ms" field stripped, the per-line "cache" hit/miss label blanked
(which of several identical concurrent jobs computes vs joins is the
one schedule-dependent bit; the totals are deterministic), and the
depth-derived "retry_after_ms" hint stripped.

Also validates the shutdown stats line (--stats FILE) in both wire
formats: the default bare ServerStats::to_json() object and the
extended "stats{...}"-prefixed line emitted under --stats-json (which
additionally carries "deduped" and "uptime_ms").

Usage:
    check_server.py RESULTS.txt              # validate, exit 0/1
    check_server.py RESULTS.txt --norm OUT   # validate + normalised copy
    check_server.py RESULTS.txt --norm OUT --exclude-ids 3,7
                                 # drop ids 3 and 7 from the normalised
                                 # copy (chaos runs: ids a failpoint
                                 # schedule deliberately perturbed)
    check_server.py RESULTS.txt --stats STATS.json
                                 # also validate the shutdown stats line
                                 # (either format, auto-detected)
"""

import argparse
import json
import re
import sys

ERROR_CODES = {1, 2, 3, 4, 5, 6}
OK_FIELDS = {
    "id", "status", "digest", "cache", "strategy", "completion",
    "external_ipc", "max_load", "procs", "wall_ms",
}
ERROR_FIELDS = {"id", "line", "status", "error", "code"}
# Optional on code-5 rejections only: the admission backoff hint.
ERROR_OPTIONAL_FIELDS = {"retry_after_ms"}
# The shutdown stats line: the bare to_json() field set, and the two
# extra fields the extended `stats{...}` format appends.
STATS_FIELDS = {
    "lines", "ok", "errors", "rejected", "abandoned",
    "cache_hits", "cache_misses", "cache_evictions",
}
STATS_EXTENDED_FIELDS = STATS_FIELDS | {"deduped", "uptime_ms"}


def check_line(obj, index, errors):
    def fail(message):
        errors.append(f"line {index + 1}: {message}")

    if not isinstance(obj, dict):
        fail("result is not an object")
        return
    status = obj.get("status")
    if status == "ok":
        missing = OK_FIELDS - obj.keys()
        extra = obj.keys() - OK_FIELDS
        if missing:
            fail(f"ok result missing fields {sorted(missing)}")
        if extra:
            fail(f"ok result has unexpected fields {sorted(extra)}")
        if missing or extra:
            return
        if not re.fullmatch(r"[0-9a-f]{16}", obj["digest"]):
            fail(f"digest must be 16 lowercase hex, got {obj['digest']!r}")
        if obj["cache"] not in ("hit", "miss"):
            fail(f"cache must be hit|miss, got {obj['cache']!r}")
        if not isinstance(obj["procs"], list) or not all(
            isinstance(p, int) and p >= 0 for p in obj["procs"]
        ):
            fail("procs must be a list of non-negative ints")
        for key in ("completion", "external_ipc", "max_load"):
            if not isinstance(obj[key], int) or obj[key] < 0:
                fail(f"{key} must be a non-negative int, got {obj[key]!r}")
    elif status == "error":
        missing = ERROR_FIELDS - obj.keys()
        extra = obj.keys() - ERROR_FIELDS - ERROR_OPTIONAL_FIELDS
        if missing:
            fail(f"error result missing fields {sorted(missing)}")
        if extra:
            fail(f"error result has unexpected fields {sorted(extra)}")
        if missing or extra:
            return
        if obj["code"] not in ERROR_CODES:
            fail(f"code must be in {sorted(ERROR_CODES)}, got {obj['code']!r}")
        if not isinstance(obj["error"], str) or not obj["error"]:
            fail("error must be a non-empty message")
        if "retry_after_ms" in obj:
            if obj["code"] != 5:
                fail(
                    "retry_after_ms is only valid on code-5 rejections, "
                    f"got code {obj['code']!r}"
                )
            if not isinstance(obj["retry_after_ms"], int) or (
                obj["retry_after_ms"] < 0
            ):
                fail(
                    "retry_after_ms must be a non-negative int, got "
                    f"{obj['retry_after_ms']!r}"
                )
    else:
        fail(f"status must be 'ok' or 'error', got {status!r}")


def check_stats(path, errors):
    """Validates the shutdown stats line, auto-detecting the format.

    Accepts both the bare ServerStats::to_json() object and the
    extended "stats{...}"-prefixed line from --stats-json. The file may
    carry other stderr noise (recovery banners, failpoint reports); the
    stats line is the first line that parses as one of the two shapes.
    """
    def fail(message):
        errors.append(f"{path}: {message}")

    candidates = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if line.startswith("stats{"):
                candidates.append((line[len("stats"):], True))
            elif line.startswith("{"):
                candidates.append((line, False))
    for text, extended in candidates:
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            continue
        expected = STATS_EXTENDED_FIELDS if extended else STATS_FIELDS
        if obj.keys() != expected:
            continue
        bad = {
            key: value for key, value in obj.items()
            if not isinstance(value, int) or value < 0
        }
        if bad:
            fail(f"stats fields must be non-negative ints: {bad}")
            return
        booked = (
            obj["ok"] + obj["errors"]
        )
        if booked != obj["lines"]:
            fail(
                f"stats identity broken: ok {obj['ok']} + errors "
                f"{obj['errors']} != lines {obj['lines']}"
            )
        for subset in ("rejected", "abandoned"):
            if obj[subset] > obj["errors"]:
                fail(f"stats: {subset} {obj[subset]} exceeds errors")
        return
    fail("no stats line found in either format")


def normalised(results, exclude_ids=()):
    exclude = {str(i) for i in exclude_ids}
    out = []
    for obj in results:
        if str(obj.get("id")) in exclude:
            continue
        obj = dict(obj)
        obj.pop("wall_ms", None)
        # The backoff hint is a function of the instantaneous queue
        # depth, which is schedule-dependent; drop it like wall_ms.
        obj.pop("retry_after_ms", None)
        if "cache" in obj:
            obj["cache"] = "?"
        out.append(obj)
    # Result ids are echoed verbatim (parse failures get null), so
    # (id-is-null, id, line) is a total, schedule-independent order.
    out.sort(
        key=lambda o: (o["id"] is None, str(o["id"]), o.get("line", 0))
    )
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="server result stream (one JSON/line)")
    parser.add_argument(
        "--norm", metavar="OUT",
        help="write a normalised copy (sorted, volatile fields stripped)",
    )
    parser.add_argument(
        "--exclude-ids", metavar="IDS", default="",
        help="comma-separated ids to drop from the normalised copy "
             "(for chaos-run diffs against a clean run)",
    )
    parser.add_argument(
        "--stats", metavar="FILE",
        help="also validate the shutdown stats line in FILE "
             "(bare to_json() or stats{...} format, auto-detected)",
    )
    args = parser.parse_args()

    errors = []
    results = []
    with open(args.results, encoding="utf-8") as handle:
        for index, raw in enumerate(handle):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                errors.append(f"line {index + 1}: not valid JSON: {exc}")
                continue
            check_line(obj, index, errors)
            results.append(obj)

    if args.stats:
        check_stats(args.stats, errors)

    if errors:
        for message in errors:
            print(message, file=sys.stderr)
        print(f"{args.results}: {len(errors)} problem(s)", file=sys.stderr)
        return 1

    if args.norm:
        exclude_ids = [i for i in args.exclude_ids.split(",") if i]
        with open(args.norm, "w", encoding="utf-8") as handle:
            for obj in normalised(results, exclude_ids):
                json.dump(obj, handle, sort_keys=True, separators=(",", ":"))
                handle.write("\n")

    ok = sum(1 for o in results if o["status"] == "ok")
    print(
        f"{args.results}: {len(results)} results ({ok} ok, "
        f"{len(results) - ok} error) valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
