// oregami_serve -- the long-lived mapping daemon.
//
//   oregami_serve [--jobs J] [--queue-capacity N] [--cache-capacity N]
//                 [--cache-shards S] [--deadline MS] [--deterministic]
//                 [--cache-file PATH] [--failpoints SCHED]
//                 [--trace FILE] [--trace-summary]
//
// Reads newline-delimited JSON jobs from stdin (protocol in
// src/oregami/server/wire.hpp), emits one JSON result line per job on
// stdout in completion order, and prints a one-line JSON stats summary
// on stderr at shutdown. Bad jobs produce structured error lines, not
// process exits; the daemon drains every admitted job on EOF, SIGINT
// or SIGTERM before exiting.
//
// --cache-file makes the result cache crash-safe (server/persist.hpp):
// boot recovers every valid record of PATH into the cache (a warm
// restart; the recovery report goes to stderr) and every computed
// outcome is journaled, so even a kill -9 mid-write only costs the
// torn tail. --failpoints arms the deterministic chaos schedule
// (support/failpoint.hpp grammar).
//
//   $ printf '%s\n' \
//       '{"id":1,"program":"jacobi","bind":{"n":8,"iters":10},"topology":"mesh:4x4"}' \
//     | oregami_serve
//
// Exit codes: 0 clean drain (even if every job failed), 2 usage error,
// 1 internal error.
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "oregami/server/persist.hpp"
#include "oregami/server/server.hpp"
#include "oregami/support/failpoint.hpp"
#include "oregami/support/trace.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <signal.h>
#endif

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int sig) {
  // Stop admitting; in-flight jobs drain and the journal flushes. A
  // second signal kills via the restored default handler.
  g_stop.store(true, std::memory_order_relaxed);
#if defined(__linux__) || defined(__APPLE__)
  std::signal(sig, SIG_DFL);
#else
  (void)sig;
#endif
}

int usage() {
  std::cerr
      << "usage: oregami_serve [options]  (jobs on stdin, results on "
         "stdout)\n"
      << "  --jobs J            worker threads (0 = all cores; default 1)\n"
      << "  --queue-capacity N  admission bound: reject jobs (code 5) when\n"
      << "                      N are already pending (default 64)\n"
      << "  --cache-capacity N  resident result-cache entries "
         "(default 1024)\n"
      << "  --cache-shards S    cache lock stripes (default 8)\n"
      << "  --deadline MS       default per-job deadline; jobs may "
         "override\n"
      << "                      with \"deadline_ms\" (0 = none)\n"
      << "  --deterministic     print wall_ms as 0.000 (byte-stable "
         "output)\n"
      << "  --cache-file PATH   crash-safe cache persistence: recover "
         "PATH\n"
      << "                      on boot (warm restart), journal every\n"
      << "                      computed outcome (report on stderr)\n"
      << "  --failpoints SCHED  arm a deterministic chaos schedule, "
         "e.g.\n"
      << "                      \"persist.write:err@3,job.run:hang@7\"\n"
      << "  --trace FILE        write a Chrome trace-event JSON of the "
         "run\n"
      << "  --trace-summary     print the ASCII span tree to stderr\n"
      << "exit codes: 0 clean drain, 1 internal error, 2 usage\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    oregami::server::ServerOptions options;
    std::optional<std::string> trace_file;
    std::optional<std::string> cache_file;
    std::optional<std::string> failpoints;
    bool trace_summary = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_int = [&](long long lo, long long hi,
                          const char* what) -> std::optional<long long> {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs an argument\n";
          return std::nullopt;
        }
        try {
          const long long v = std::stoll(argv[++i]);
          if (v < lo || v > hi) {
            std::cerr << arg << " expects " << what << "\n";
            return std::nullopt;
          }
          return v;
        } catch (const std::exception&) {
          std::cerr << "bad " << arg << " value '" << argv[i] << "'\n";
          return std::nullopt;
        }
      };
      if (arg == "--jobs") {
        const auto v = next_int(0, 4096, "J >= 0 (0 = all cores)");
        if (!v) return usage();
        options.jobs = static_cast<int>(*v);
      } else if (arg == "--queue-capacity") {
        const auto v = next_int(1, 1 << 20, "N >= 1");
        if (!v) return usage();
        options.queue_capacity = static_cast<int>(*v);
      } else if (arg == "--cache-capacity") {
        const auto v = next_int(1, 1LL << 30, "N >= 1");
        if (!v) return usage();
        options.cache_capacity = static_cast<std::size_t>(*v);
      } else if (arg == "--cache-shards") {
        const auto v = next_int(1, 256, "1 <= S <= 256");
        if (!v) return usage();
        options.cache_shards = static_cast<int>(*v);
      } else if (arg == "--deadline") {
        // Negative = already expired: deterministic, used by tests.
        const auto v = next_int(-1, 1LL << 40, "MS >= -1");
        if (!v) return usage();
        options.default_deadline_ms = *v;
      } else if (arg == "--deterministic") {
        options.deterministic = true;
      } else if (arg == "--cache-file") {
        if (i + 1 >= argc) {
          std::cerr << "--cache-file needs an argument\n";
          return usage();
        }
        cache_file = argv[++i];
      } else if (arg == "--failpoints") {
        if (i + 1 >= argc) {
          std::cerr << "--failpoints needs an argument\n";
          return usage();
        }
        failpoints = argv[++i];
      } else if (arg == "--trace") {
        if (i + 1 >= argc) {
          std::cerr << "--trace needs an argument\n";
          return usage();
        }
        trace_file = argv[++i];
      } else if (arg == "--trace-summary") {
        trace_summary = true;
      } else {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage();
      }
    }

#if defined(__linux__) || defined(__APPLE__)
    // No SA_RESTART: a signal interrupts the blocking stdin read so
    // the drain runs instead of waiting for the next input line.
    // SIGTERM gets the same graceful treatment as ^C: stop admitting,
    // drain, flush the journal, exit 0.
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
#else
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
#endif

    if (failpoints) {
      try {
        oregami::failpoint::configure(*failpoints);
      } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n";
        return usage();
      }
    }

    // The tool owns the cache (and journal) so warm state survives in
    // one place: serve() borrows both.
    oregami::server::ResultCache cache(options.cache_capacity,
                                       options.cache_shards);
    std::optional<oregami::server::CacheJournal> journal;
    if (cache_file) {
      options.cache = &cache;
      journal.emplace(*cache_file, cache);
      const auto recovery = journal->open_and_recover();
      std::cerr << "cache-file " << *cache_file << ": "
                << recovery.to_string() << "\n";
      options.journal = &*journal;
    }

    if (trace_file || trace_summary) {
      oregami::trace::enable();
    }
    const oregami::server::ServerStats stats =
        oregami::server::serve(std::cin, std::cout, options, &g_stop);
    if (journal) {
      journal->flush();
      const auto pstats = journal->stats();
      std::cerr << "cache-file " << *cache_file << ": appended "
                << pstats.appended << ", compactions "
                << pstats.compactions << ", io_errors " << pstats.io_errors
                << (pstats.degraded ? ", persistence degraded" : "")
                << "\n";
    }
    if (failpoints) {
      const std::string fired = oregami::failpoint::report();
      if (!fired.empty()) {
        std::cerr << "failpoints: " << fired << "\n";
      }
    }
    std::cerr << stats.to_json() << "\n";

    if (trace_file || trace_summary) {
      oregami::trace::disable();
      const auto events = oregami::trace::snapshot();
      if (trace_file) {
        std::ofstream out(*trace_file);
        if (!out) {
          std::cerr << "warning: cannot write trace to '" << *trace_file
                    << "'\n";
        } else {
          oregami::trace::write_chrome_json(out, events);
        }
      }
      if (trace_summary) {
        std::cerr << oregami::trace::summary_tree(events);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return 1;
  }
}
