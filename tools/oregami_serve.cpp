// oregami_serve -- the long-lived mapping daemon.
//
//   oregami_serve [--jobs J] [--queue-capacity N] [--cache-capacity N]
//                 [--cache-shards S] [--deadline MS] [--deterministic]
//                 [--cache-file PATH] [--failpoints SCHED]
//                 [--trace FILE] [--trace-summary]
//                 [--metrics-file PATH] [--metrics-interval SEC]
//                 [--log FILE] [--log-level LVL] [--stats-json]
//
// Reads newline-delimited JSON jobs from stdin (protocol in
// src/oregami/server/wire.hpp), emits one JSON result line per job on
// stdout in completion order, and prints a one-line JSON stats summary
// on stderr at shutdown. Bad jobs produce structured error lines, not
// process exits; the daemon drains every admitted job on EOF, SIGINT
// or SIGTERM before exiting.
//
// --cache-file makes the result cache crash-safe (server/persist.hpp):
// boot recovers every valid record of PATH into the cache (a warm
// restart; the recovery report goes to stderr) and every computed
// outcome is journaled, so even a kill -9 mid-write only costs the
// torn tail. --failpoints arms the deterministic chaos schedule
// (support/failpoint.hpp grammar).
//
// --metrics-file publishes the live metrics registry
// (support/metrics.hpp) as Prometheus text exposition via temp file +
// atomic rename: on every --metrics-interval tick, on SIGUSR1, and at
// shutdown. --log writes a structured NDJSON event log
// (server/telemetry.hpp). An unwritable metrics/log path degrades
// telemetry with a stderr warning; the daemon keeps serving.
//
//   $ printf '%s\n' \
//       '{"id":1,"program":"jacobi","bind":{"n":8,"iters":10},"topology":"mesh:4x4"}' \
//     | oregami_serve
//
// Exit codes: 0 clean drain (even if every job failed), 2 usage error,
// 1 internal error.
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "oregami/server/persist.hpp"
#include "oregami/server/server.hpp"
#include "oregami/server/telemetry.hpp"
#include "oregami/support/failpoint.hpp"
#include "oregami/support/metrics.hpp"
#include "oregami/support/trace.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <signal.h>
#endif

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump_metrics{false};

extern "C" void handle_dump_signal(int) {
  // Async-signal-safe: just raise the flag; the metrics thread writes.
  g_dump_metrics.store(true, std::memory_order_relaxed);
}

extern "C" void handle_stop_signal(int sig) {
  // Stop admitting; in-flight jobs drain and the journal flushes. A
  // second signal kills via the restored default handler.
  g_stop.store(true, std::memory_order_relaxed);
#if defined(__linux__) || defined(__APPLE__)
  std::signal(sig, SIG_DFL);
#else
  (void)sig;
#endif
}

int usage() {
  std::cerr
      << "usage: oregami_serve [options]  (jobs on stdin, results on "
         "stdout)\n"
      << "  --jobs J            worker threads (0 = all cores; default 1)\n"
      << "  --queue-capacity N  admission bound: reject jobs (code 5) when\n"
      << "                      N are already pending (default 64)\n"
      << "  --cache-capacity N  resident result-cache entries "
         "(default 1024)\n"
      << "  --cache-shards S    cache lock stripes (default 8)\n"
      << "  --deadline MS       default per-job deadline; jobs may "
         "override\n"
      << "                      with \"deadline_ms\" (0 = none)\n"
      << "  --deterministic     print wall_ms as 0.000 (byte-stable "
         "output)\n"
      << "  --cache-file PATH   crash-safe cache persistence: recover "
         "PATH\n"
      << "                      on boot (warm restart), journal every\n"
      << "                      computed outcome (report on stderr)\n"
      << "  --failpoints SCHED  arm a deterministic chaos schedule, "
         "e.g.\n"
      << "                      \"persist.write:err@3,job.run:hang@7\"\n"
      << "  --trace FILE        write a Chrome trace-event JSON of the "
         "run\n"
      << "  --trace-summary     print the ASCII span tree to stderr\n"
      << "  --metrics-file PATH publish Prometheus text exposition to "
         "PATH\n"
      << "                      (atomic rename) at shutdown, on SIGUSR1,\n"
      << "                      and every --metrics-interval seconds\n"
      << "  --metrics-interval SEC  periodic metrics publication "
         "(needs\n"
      << "                      --metrics-file; 1..86400)\n"
      << "  --log FILE          structured NDJSON event log\n"
      << "  --log-level LVL     debug|info|warn (default info; needs "
         "--log)\n"
      << "  --stats-json        print the extended stats{...} shutdown "
         "line\n"
      << "exit codes: 0 clean drain, 1 internal error, 2 usage\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    oregami::server::ServerOptions options;
    std::optional<std::string> trace_file;
    std::optional<std::string> cache_file;
    std::optional<std::string> failpoints;
    std::optional<std::string> metrics_file;
    std::optional<std::string> log_file;
    long long metrics_interval = 0;
    auto log_level = oregami::server::EventLog::Level::kInfo;
    bool log_level_set = false;
    bool trace_summary = false;
    bool stats_json = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_int = [&](long long lo, long long hi,
                          const char* what) -> std::optional<long long> {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs an argument\n";
          return std::nullopt;
        }
        try {
          const long long v = std::stoll(argv[++i]);
          if (v < lo || v > hi) {
            std::cerr << arg << " expects " << what << "\n";
            return std::nullopt;
          }
          return v;
        } catch (const std::exception&) {
          std::cerr << "bad " << arg << " value '" << argv[i] << "'\n";
          return std::nullopt;
        }
      };
      if (arg == "--jobs") {
        const auto v = next_int(0, 4096, "J >= 0 (0 = all cores)");
        if (!v) return usage();
        options.jobs = static_cast<int>(*v);
      } else if (arg == "--queue-capacity") {
        const auto v = next_int(1, 1 << 20, "N >= 1");
        if (!v) return usage();
        options.queue_capacity = static_cast<int>(*v);
      } else if (arg == "--cache-capacity") {
        const auto v = next_int(1, 1LL << 30, "N >= 1");
        if (!v) return usage();
        options.cache_capacity = static_cast<std::size_t>(*v);
      } else if (arg == "--cache-shards") {
        const auto v = next_int(1, 256, "1 <= S <= 256");
        if (!v) return usage();
        options.cache_shards = static_cast<int>(*v);
      } else if (arg == "--deadline") {
        // Negative = already expired: deterministic, used by tests.
        const auto v = next_int(-1, 1LL << 40, "MS >= -1");
        if (!v) return usage();
        options.default_deadline_ms = *v;
      } else if (arg == "--deterministic") {
        options.deterministic = true;
      } else if (arg == "--cache-file") {
        if (i + 1 >= argc) {
          std::cerr << "--cache-file needs an argument\n";
          return usage();
        }
        cache_file = argv[++i];
      } else if (arg == "--failpoints") {
        if (i + 1 >= argc) {
          std::cerr << "--failpoints needs an argument\n";
          return usage();
        }
        failpoints = argv[++i];
      } else if (arg == "--trace") {
        if (i + 1 >= argc) {
          std::cerr << "--trace needs an argument\n";
          return usage();
        }
        trace_file = argv[++i];
      } else if (arg == "--trace-summary") {
        trace_summary = true;
      } else if (arg == "--metrics-file") {
        if (i + 1 >= argc) {
          std::cerr << "--metrics-file needs an argument\n";
          return usage();
        }
        metrics_file = argv[++i];
      } else if (arg == "--metrics-interval") {
        const auto v = next_int(1, 86400, "1 <= SEC <= 86400");
        if (!v) return usage();
        metrics_interval = *v;
      } else if (arg == "--log") {
        if (i + 1 >= argc) {
          std::cerr << "--log needs an argument\n";
          return usage();
        }
        log_file = argv[++i];
      } else if (arg == "--log-level") {
        if (i + 1 >= argc) {
          std::cerr << "--log-level needs an argument\n";
          return usage();
        }
        const auto lvl =
            oregami::server::EventLog::parse_level(argv[++i]);
        if (!lvl) {
          std::cerr << "bad --log-level '" << argv[i]
                    << "' (expected debug|info|warn)\n";
          return usage();
        }
        log_level = *lvl;
        log_level_set = true;
      } else if (arg == "--stats-json") {
        stats_json = true;
      } else {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage();
      }
    }
    if (metrics_interval > 0 && !metrics_file) {
      std::cerr << "--metrics-interval needs --metrics-file\n";
      return usage();
    }
    if (log_level_set && !log_file) {
      std::cerr << "--log-level needs --log\n";
      return usage();
    }

#if defined(__linux__) || defined(__APPLE__)
    // No SA_RESTART: a signal interrupts the blocking stdin read so
    // the drain runs instead of waiting for the next input line.
    // SIGTERM gets the same graceful treatment as ^C: stop admitting,
    // drain, flush the journal, exit 0.
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
#else
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
#endif

    if (failpoints) {
      try {
        oregami::failpoint::configure(*failpoints);
      } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n";
        return usage();
      }
    }

    // The tool owns the cache (and journal) so warm state survives in
    // one place: serve() borrows both.
    oregami::server::ResultCache cache(options.cache_capacity,
                                       options.cache_shards);
    std::optional<oregami::server::CacheJournal> journal;
    if (cache_file) {
      options.cache = &cache;
      journal.emplace(*cache_file, cache);
      const auto recovery = journal->open_and_recover();
      std::cerr << "cache-file " << *cache_file << ": "
                << recovery.to_string() << "\n";
      options.journal = &*journal;
    }

    if (trace_file || trace_summary) {
      oregami::trace::enable();
    }

    // Telemetry: the deterministic contract applies to metrics and the
    // event log exactly as it does to the wire format.
    oregami::metrics::set_deterministic(options.deterministic);
    std::optional<oregami::server::EventLog> event_log;
    if (log_file) {
      event_log.emplace(*log_file, log_level, options.deterministic);
      if (!event_log->ok()) {
        std::cerr << "warning: cannot write log to '" << *log_file
                  << "'; event logging disabled\n";
        event_log.reset();
      } else {
        options.log = &*event_log;
        event_log->event(oregami::server::EventLog::Level::kInfo,
                         oregami::server::EventLog::kServerStart,
                         "server_start", "");
      }
    }
    std::thread metrics_thread;
    std::atomic<bool> metrics_thread_stop{false};
    if (metrics_file) {
      oregami::metrics::enable();
      // Register the full server series set up front so every
      // exposition -- including an early SIGUSR1 dump -- has it.
      oregami::server::server_metrics();
#if defined(__linux__) || defined(__APPLE__)
      struct sigaction usr1 = {};
      usr1.sa_handler = handle_dump_signal;
      sigemptyset(&usr1.sa_mask);
      usr1.sa_flags = SA_RESTART;  // a dump must not interrupt the read
      sigaction(SIGUSR1, &usr1, nullptr);
#endif
      metrics_thread = std::thread([&metrics_thread_stop, metrics_interval,
                                    path = *metrics_file] {
        bool warned = false;
        auto last = std::chrono::steady_clock::now();
        while (!metrics_thread_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          bool due = g_dump_metrics.exchange(false);
          if (metrics_interval > 0 &&
              std::chrono::steady_clock::now() - last >=
                  std::chrono::seconds(metrics_interval)) {
            due = true;
          }
          if (!due) continue;
          last = std::chrono::steady_clock::now();
          if (!oregami::metrics::write_prometheus_file(path) && !warned) {
            std::cerr << "warning: cannot write metrics to '" << path
                      << "'\n";
            warned = true;
          }
        }
      });
    }

    const auto serve_start = std::chrono::steady_clock::now();
    const oregami::server::ServerStats stats =
        oregami::server::serve(std::cin, std::cout, options, &g_stop);
    const std::int64_t uptime_ms =
        options.deterministic
            ? 0
            : std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - serve_start)
                  .count();
    if (metrics_thread.joinable()) {
      metrics_thread_stop.store(true, std::memory_order_relaxed);
      metrics_thread.join();
    }
    if (event_log && g_stop.load(std::memory_order_relaxed)) {
      event_log->event(oregami::server::EventLog::Level::kInfo,
                       oregami::server::EventLog::kServerStop,
                       "shutdown_signal", "");
    }
    if (journal) {
      journal->flush();
      const auto pstats = journal->stats();
      std::cerr << "cache-file " << *cache_file << ": appended "
                << pstats.appended << ", compactions "
                << pstats.compactions << ", io_errors " << pstats.io_errors
                << (pstats.degraded ? ", persistence degraded" : "")
                << "\n";
      if (event_log && (pstats.io_errors > 0 || pstats.degraded)) {
        event_log->event(oregami::server::EventLog::Level::kWarn,
                         oregami::server::EventLog::kServerStop,
                         "persist_warning",
                         "\"io_errors\":" +
                             std::to_string(pstats.io_errors) +
                             ",\"degraded\":" +
                             (pstats.degraded ? "true" : "false"));
      }
    }
    if (failpoints) {
      const std::string fired = oregami::failpoint::report();
      if (!fired.empty()) {
        std::cerr << "failpoints: " << fired << "\n";
      }
    }
    if (event_log) {
      event_log->event(
          oregami::server::EventLog::Level::kInfo,
          oregami::server::EventLog::kServerStop, "server_stop",
          "\"lines\":" + std::to_string(stats.lines) +
              ",\"ok\":" + std::to_string(stats.ok) +
              ",\"errors\":" + std::to_string(stats.errors));
      event_log->close();
    }
    if (metrics_file &&
        !oregami::metrics::write_prometheus_file(*metrics_file)) {
      std::cerr << "warning: cannot write metrics to '" << *metrics_file
                << "'\n";
    }
    std::cerr << (stats_json
                      ? oregami::server::render_stats_line(stats, uptime_ms)
                      : stats.to_json())
              << "\n";

    if (trace_file || trace_summary) {
      oregami::trace::disable();
      const auto events = oregami::trace::snapshot();
      if (trace_file) {
        std::ofstream out(*trace_file);
        if (!out) {
          std::cerr << "warning: cannot write trace to '" << *trace_file
                    << "'\n";
        } else {
          oregami::trace::write_chrome_json(out, events);
        }
      }
      if (trace_summary) {
        std::cerr << oregami::trace::summary_tree(events);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return 1;
  }
}
