// oregami_map -- command-line front end for the OREGAMI pipeline.
//
//   oregami_map --program nbody --bind n=15 --bind s=4 --bind m=8
//               --topology hypercube:3 --ascii --links
//   oregami_map --larcs samples/jacobi.larcs --bind n=8 --bind iters=10
//               --topology mesh:4x4 --simulate --directives
//   oregami_map --program wavefront --bind n=6 --topology mesh:4x4
//               --inject-faults p5,s2:4 --repair
//   oregami_map --list-programs
//
// Outputs the MAPPER strategy, the METRICS summary, and optionally the
// assignment layout (--ascii), per-link tables (--links), Graphviz DOT
// (--dot), the discrete-event simulation cross-check (--simulate) and
// per-processor scheduling directives (--directives).
//
// Exit codes (stable; scripted callers rely on them):
//   0  success
//   1  internal error (a bug in oregami_map, not in the input)
//   2  usage error (bad flags / missing required arguments)
//   3  bad input (unreadable file, malformed LaRCS source, bad
//      topology or fault spec, unknown program)
//   4  mapping infeasible (the pipeline or repair could not produce a
//      valid mapping for these inputs)
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "oregami/arch/fault_model.hpp"
#include "oregami/arch/topology_spec.hpp"
#include "oregami/larcs/compiler.hpp"
#include "oregami/larcs/parser.hpp"
#include "oregami/larcs/programs.hpp"
#include "oregami/mapper/driver.hpp"
#include "oregami/mapper/portfolio.hpp"
#include "oregami/mapper/repair.hpp"
#include "oregami/metrics/metrics.hpp"
#include "oregami/metrics/render.hpp"
#include "oregami/schedule/synchrony.hpp"
#include "oregami/server/digest.hpp"
#include "oregami/server/persist.hpp"
#include "oregami/sim/network_sim.hpp"
#include "oregami/support/error.hpp"
#include "oregami/support/hash.hpp"
#include "oregami/support/metrics.hpp"
#include "oregami/support/trace.hpp"

namespace {

using namespace oregami;

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadInput = 3;
constexpr int kExitInfeasible = 4;

struct Options {
  std::optional<std::string> larcs_file;
  std::optional<std::string> program_name;
  std::map<std::string, long> bindings;
  std::optional<std::string> topology_spec;
  bool list_programs = false;
  bool ascii = false;
  bool dot = false;
  bool links = false;
  bool simulate_flag = false;
  bool directives = false;
  std::optional<std::string> fault_spec;
  std::uint64_t fault_seed = 0;
  bool repair = false;
  std::int64_t time_budget_ms = 0;
  std::optional<std::string> trace_file;
  bool trace_summary = false;
  bool explain = false;
  bool pareto = false;
  bool digest = false;
  std::optional<std::string> cache_file;
  std::optional<std::string> metrics_file;
  MapperOptions mapper;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --program NAME         pick a built-in LaRCS program\n"
      << "  --larcs FILE           read a LaRCS source file\n"
      << "  --bind NAME=VALUE      bind an algorithm parameter/import\n"
      << "  --topology SPEC        target architecture\n"
      << "  --list-programs        list the built-in corpus and exit\n"
      << "  --ascii                print the placement layout\n"
      << "  --links                print per-phase link tables\n"
      << "  --dot                  print Graphviz DOT of the task graph\n"
      << "  --simulate             run the discrete-event cross-check\n"
      << "  --directives           print per-processor schedules\n"
      << "  --no-canned | --no-group | --no-systolic\n"
      << "                         disable a MAPPER strategy\n"
      << "  --refine-placement     hill-climb the final placement on the\n"
      << "                         completion model (incremental scoring)\n"
      << "  --portfolio N          portfolio mode: run every admissible\n"
      << "                         strategy plus N seeded general variants\n"
      << "                         and keep the best (prints the table)\n"
      << "  --jobs J               portfolio worker threads (0 = all\n"
      << "                         cores); never changes the result\n"
      << "  --seed S               portfolio base seed\n"
      << "  --anneal N             add N seeded simulated-annealing\n"
      << "                         candidates to the portfolio; requires\n"
      << "                         --portfolio\n"
      << "  --heft                 add the HEFT critical-path list-schedule\n"
      << "                         candidate to the portfolio; requires\n"
      << "                         --portfolio\n"
      << "  --pareto               print the Pareto front over (completion,\n"
      << "                         external IPC, max exec load) instead of\n"
      << "                         only the scalar winner; requires\n"
      << "                         --portfolio\n"
      << "  --multilevel [LEVELS]  map with the multilevel V-cycle\n"
      << "                         (coarsen / map / refine; built for\n"
      << "                         10k+ task graphs). LEVELS caps the\n"
      << "                         coarsening depth (1..64); omit it for\n"
      << "                         automatic depth. Incompatible with\n"
      << "                         --portfolio\n"
      << "  --time-budget MS       wall-clock deadline in milliseconds for\n"
      << "                         portfolio search, multilevel refinement\n"
      << "                         and repair (0 = none)\n"
      << "  --inject-faults SPEC   degrade the machine before mapping;\n"
      << "                         " << FaultSpec::grammar_help() << "\n"
      << "  --fault-seed S         seed for rand:PxLxS fault tokens\n"
      << "  --repair               map the healthy machine first, then\n"
      << "                         repair the mapping onto the degraded\n"
      << "                         one (prints both completions)\n"
      << "  --trace FILE           record a structured pipeline trace and\n"
      << "                         write Chrome trace-event JSON to FILE\n"
      << "                         (load in Perfetto / chrome://tracing)\n"
      << "  --trace-summary        print an ASCII span tree with\n"
      << "                         inclusive/exclusive times and counters\n"
      << "  --explain              print the decision-provenance report\n"
      << "                         (why the portfolio winner won, with the\n"
      << "                         per-phase cost breakdown); requires\n"
      << "                         --portfolio\n"
      << "  --digest               print the canonical content digest of\n"
      << "                         (program, topology, options) -- the\n"
      << "                         mapping server's cache key -- and exit\n"
      << "                         without mapping\n"
      << "  --cache-file PATH      inspect a mapping-server cache file:\n"
      << "                         print the recovery report and one line\n"
      << "                         per valid entry (sorted by digest),\n"
      << "                         then exit without mapping\n"
      << "  --metrics-file PATH    one-shot dump of the metrics registry\n"
      << "                         (Prometheus text exposition) after the\n"
      << "                         run\n"
      << topology_spec_help() << "\n"
      << "exit codes: 0 ok, 1 internal error, 2 usage, 3 bad input, "
         "4 mapping infeasible\n";
  return kExitUsage;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--program") {
      if (auto v = next()) {
        options.program_name = *v;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--larcs") {
      if (auto v = next()) {
        options.larcs_file = *v;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--bind") {
      const auto v = next();
      if (!v) {
        return std::nullopt;
      }
      const auto eq = v->find('=');
      if (eq == std::string::npos) {
        std::cerr << "--bind expects NAME=VALUE, got '" << *v << "'\n";
        return std::nullopt;
      }
      try {
        options.bindings[v->substr(0, eq)] = std::stol(v->substr(eq + 1));
      } catch (const std::exception&) {
        std::cerr << "bad --bind value in '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--topology") {
      if (auto v = next()) {
        options.topology_spec = *v;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--inject-faults") {
      if (auto v = next()) {
        options.fault_spec = *v;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--list-programs") {
      options.list_programs = true;
    } else if (arg == "--ascii") {
      options.ascii = true;
    } else if (arg == "--dot") {
      options.dot = true;
    } else if (arg == "--links") {
      options.links = true;
    } else if (arg == "--simulate") {
      options.simulate_flag = true;
    } else if (arg == "--directives") {
      options.directives = true;
    } else if (arg == "--repair") {
      options.repair = true;
    } else if (arg == "--no-canned") {
      options.mapper.allow_canned = false;
    } else if (arg == "--no-group") {
      options.mapper.allow_group = false;
    } else if (arg == "--no-systolic") {
      options.mapper.allow_systolic = false;
    } else if (arg == "--refine-placement") {
      options.mapper.refine_placement = true;
    } else if (arg == "--trace") {
      if (auto v = next()) {
        options.trace_file = *v;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--trace-summary") {
      options.trace_summary = true;
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--digest") {
      options.digest = true;
    } else if (arg == "--cache-file") {
      if (auto v = next()) {
        options.cache_file = *v;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--metrics-file") {
      if (auto v = next()) {
        options.metrics_file = *v;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--heft") {
      options.mapper.heft = true;
    } else if (arg == "--multilevel") {
      // The level cap is optional: consume the next token only when it
      // parses fully as an integer, so "--multilevel --ascii" works.
      options.mapper.multilevel = -1;  // auto depth
      if (i + 1 < argc) {
        const std::string peek = argv[i + 1];
        std::size_t pos = 0;
        int levels = 0;
        try {
          levels = std::stoi(peek, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        if (pos == peek.size() && !peek.empty()) {
          ++i;
          if (levels < 1 || levels > 64) {
            std::cerr << "--multilevel expects 1 <= LEVELS <= 64, got '"
                      << peek << "'\n";
            return std::nullopt;
          }
          options.mapper.multilevel = levels;
        }
      }
    } else if (arg == "--pareto") {
      options.pareto = true;
    } else if (arg == "--portfolio" || arg == "--anneal" || arg == "--jobs" ||
               arg == "--seed" || arg == "--fault-seed" ||
               arg == "--time-budget") {
      const auto v = next();
      if (!v) {
        return std::nullopt;
      }
      try {
        if (arg == "--portfolio") {
          options.mapper.portfolio = std::stoi(*v);
        } else if (arg == "--anneal") {
          options.mapper.anneal = std::stoi(*v);
        } else if (arg == "--jobs") {
          options.mapper.jobs = std::stoi(*v);
        } else if (arg == "--seed") {
          options.mapper.portfolio_seed = std::stoull(*v);
        } else if (arg == "--fault-seed") {
          options.fault_seed = std::stoull(*v);
        } else {
          options.time_budget_ms = std::stoll(*v);
        }
      } catch (const std::exception&) {
        std::cerr << "bad " << arg << " value '" << *v << "'\n";
        return std::nullopt;
      }
      if (arg == "--portfolio" && options.mapper.portfolio < 0) {
        std::cerr << "--portfolio expects N >= 0\n";
        return std::nullopt;
      }
      if (arg == "--anneal" && options.mapper.anneal < 0) {
        std::cerr << "--anneal expects N >= 0\n";
        return std::nullopt;
      }
      if (arg == "--jobs" && options.mapper.jobs < 0) {
        std::cerr << "--jobs expects J >= 0 (0 = all cores)\n";
        return std::nullopt;
      }
      if (arg == "--time-budget" && options.time_budget_ms < 0) {
        std::cerr << "--time-budget expects MS >= 0 (0 = none)\n";
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  return options;
}

/// Maps, measures, and prints. Only MappingError (= the pipeline could
/// not produce a mapping for these inputs) escapes classification here.
int map_and_report(const Options& options, const larcs::Program& ast,
                   const larcs::CompiledProgram& compiled,
                   const Topology& topo,
                   const std::optional<FaultedTopology>& faulted) {
  try {
    MapperOptions mapper = options.mapper;
    mapper.multilevel_budget_ms = options.time_budget_ms;
    // Degraded-mode mapping (no --repair): run the pipeline directly
    // on the healthy sub-machine.
    if (faulted && !options.repair) {
      mapper.faults = &*faulted;
    }

    MapperReport report;
    std::string portfolio_table;
    std::string provenance;
    std::string pareto_front;
    if (mapper.portfolio > 0 && mapper.faults == nullptr) {
      PortfolioOptions popts = portfolio_options_from(mapper);
      popts.time_budget_ms = options.time_budget_ms;
      const PortfolioReport pf =
          portfolio_map_program(ast, compiled, topo, mapper, popts);
      // The timed variant: same table plus wall-ms columns, with
      // skipped candidates showing the elapsed time at the cut-off.
      portfolio_table = pf.timed_table();
      if (options.explain) {
        provenance = pf.explain();
      }
      if (options.pareto) {
        pareto_front = pf.pareto();
      }
      report = pf.best;
    } else {
      report = map_program(ast, compiled, topo, mapper);
    }
    const auto& graph = compiled.graph;

    std::cout << "algorithm: " << ast.name << "  (" << graph.num_tasks()
              << " tasks, " << graph.num_comm_edges() << " comm edges)\n"
              << "network:   " << topo.name() << "  (" << topo.num_procs()
              << " processors, " << topo.num_links() << " links)\n";
    if (faulted) {
      std::cout << "faults:    " << faulted->spec().to_string() << "  ("
                << faulted->healthy_procs().size() << "/"
                << topo.num_procs() << " processors healthy, "
                << faulted->num_alive_links() << "/" << topo.num_links()
                << " links alive)\n";
    }
    std::cout << "strategy:  " << to_string(report.strategy) << "\n"
              << "           " << report.details << "\n\n";
    if (options.explain) {
      std::cout << provenance << "\n";
    } else if (!portfolio_table.empty()) {
      std::cout << "portfolio candidates:\n" << portfolio_table << "\n";
    }
    if (!pareto_front.empty()) {
      std::cout << pareto_front << "\n";
    }

    // Repair path: the mapping above is the healthy one; repair it onto
    // the degraded machine and print both completions side by side.
    if (faulted && options.repair) {
      RepairOptions ropts;
      ropts.time_budget_ms = options.time_budget_ms;
      ropts.seed = options.mapper.portfolio_seed;
      ropts.model = {};
      ropts.remap_options = options.mapper;
      ropts.remap_options.faults = nullptr;
      const RepairResult repaired =
          repair_mapping(graph, *faulted, report.mapping, ropts);
      std::cout << "repair:    rung " << to_string(repaired.rung) << "; "
                << repaired.details << "\n"
                << "           healthy completion:  "
                << repaired.healthy_completion << "\n"
                << "           degraded completion: "
                << repaired.degraded_completion << "\n";
      for (const RepairMove& move : repaired.migrations) {
        std::cout << "           task " << move.task << ": proc "
                  << move.from_proc << " -> " << move.to_proc << "\n";
      }
      std::cout << "\n";
      report.mapping = repaired.mapping;
    }

    // In repair mode these metrics describe the repaired mapping (the
    // degraded-completion line above charges the slow links on top).
    const auto metrics = compute_metrics(graph, report.mapping, topo);
    const auto procs = report.mapping.proc_of_task();
    std::cout << render_summary(metrics) << "\n";
    if (faulted && !options.repair) {
      std::cout << "degraded completion (slow links charged): "
                << degraded_completion_time(graph, procs,
                                            report.mapping.routing,
                                            *faulted)
                << "\n\n";
    }

    if (options.ascii) {
      std::cout << "placement:\n"
                << render_ascii_layout(graph, procs, topo) << "\n";
    }
    if (options.links) {
      std::cout << render_link_table(metrics, topo) << "\n";
    }
    if (options.simulate_flag) {
      SimConfig sim_config;
      if (faulted) {
        sim_config.faults = &*faulted;
      }
      const SimResult sim = simulate(graph, procs, report.mapping.routing,
                                     topo, sim_config);
      std::cout << "discrete-event simulation: " << sim.total_cycles
                << " cycles (analytic model: " << metrics.completion
                << ")\n\n";
    }
    if (options.directives) {
      const auto schedule =
          derive_synchrony_sets(graph, procs, topo.num_procs());
      std::cout << "per-processor scheduling directives:\n";
      for (int p = 0; p < topo.num_procs(); ++p) {
        std::cout << "  proc " << p << ": "
                  << local_directive(graph, schedule, p) << "\n";
      }
      std::cout << "\n";
    }
    if (options.dot) {
      std::cout << render_task_graph_dot(graph);
    }
    return kExitOk;
  } catch (const MappingError& e) {
    std::cerr << "error: mapping infeasible: " << e.what() << "\n";
    return kExitInfeasible;
  }
}

/// The --cache-file inspection mode: recover PATH exactly like the
/// daemon would and print what a warm boot would serve. Deterministic
/// output (entries sorted by digest), so two cache files can be
/// diffed.
int inspect_cache_file(const std::string& path) {
  // Big enough that inspection never evicts what the file holds.
  server::ResultCache cache(1 << 20, 1);
  const server::RecoveryStats stats = server::recover_cache_file(path, cache);
  if (stats.missing) {
    std::cerr << "error: cannot open cache file '" << path << "'\n";
    return kExitBadInput;
  }
  std::cout << "cache-file " << path << ": " << stats.to_string() << "\n";
  for (const auto& [digest, outcome] : cache.snapshot_entries()) {
    std::cout << digest_hex(digest) << "  ";
    if (outcome->ok) {
      std::cout << "ok     strategy=" << outcome->strategy
                << " completion=" << outcome->completion
                << " external_ipc=" << outcome->external_ipc
                << " max_load=" << outcome->max_load
                << " tasks=" << outcome->proc_of_task.size()
                << " procs=" << outcome->num_procs;
    } else {
      std::cout << "error  code=" << outcome->error_code << " \""
                << outcome->error << "\"";
    }
    std::cout << "\n";
  }
  return kExitOk;
}

int run(const Options& options) {
  // Input stage: everything that can fail here is the user's input, not
  // the pipeline -- unreadable files, unknown programs, malformed LaRCS
  // source, bad topology/fault specs.
  std::string source;
  if (options.larcs_file) {
    std::ifstream in(*options.larcs_file);
    if (!in) {
      std::cerr << "error: cannot open '" << *options.larcs_file << "'\n";
      return kExitBadInput;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    bool found = false;
    for (const auto& entry : larcs::programs::catalog()) {
      if (entry.name == *options.program_name) {
        source = entry.source;
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "error: unknown program '" << *options.program_name
                << "' (see --list-programs)\n";
      return kExitBadInput;
    }
  }

  try {
    const auto ast = larcs::parse_program(source);
    const auto compiled = larcs::compile(ast, options.bindings);
    const Topology topo = parse_topology_spec(*options.topology_spec);
    std::optional<FaultedTopology> faulted;
    if (options.fault_spec) {
      faulted.emplace(topo, FaultSpec::parse(*options.fault_spec, topo,
                                             options.fault_seed));
    }
    if (options.digest) {
      // Print the mapping server's cache key for these inputs (used to
      // pre-warm a server or debug why two requests don't share an
      // entry) and skip the mapping itself.
      MapperOptions mapper = options.mapper;
      mapper.multilevel_budget_ms = options.time_budget_ms;
      if (faulted && !options.repair) {
        mapper.faults = &*faulted;
      }
      std::cout << "digest: "
                << digest_hex(
                       server::job_digest(compiled.graph, topo, mapper))
                << "\n";
      return kExitOk;
    }
    return map_and_report(options, ast, compiled, topo, faulted);
  } catch (const LarcsError& e) {
    std::cerr << "error: " << e.loc().to_string() << ": " << e.what()
              << "\n";
    return kExitBadInput;
  } catch (const MappingError& e) {
    // Reaching here means a bad topology or fault spec (the mapping
    // stage classifies its own MappingErrors as exit code 4).
    std::cerr << "error: " << e.what() << "\n";
    return kExitBadInput;
  }
}

/// Flushes the tracer after the pipeline ran (success or not): Chrome
/// trace-event JSON to --trace FILE, ASCII span tree to stdout for
/// --trace-summary. Never changes the exit code.
void emit_trace(const Options& options) {
  if (!options.trace_file && !options.trace_summary) {
    return;
  }
  trace::disable();
  const auto events = trace::snapshot();
  if (options.trace_file) {
    std::ofstream out(*options.trace_file);
    if (!out) {
      std::cerr << "warning: cannot write trace to '" << *options.trace_file
                << "'\n";
    } else {
      trace::write_chrome_json(out, events);
    }
  }
  if (options.trace_summary) {
    std::cout << trace::summary_tree(events);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto parsed = parse_args(argc, argv);
    if (!parsed) {
      return usage(argv[0]);
    }
    const Options& options = *parsed;

    if (options.list_programs) {
      for (const auto& entry : larcs::programs::catalog()) {
        std::string binds;
        for (const auto& [name, value] : entry.example_bindings) {
          binds += " --bind " + name + "=" + std::to_string(value);
        }
        std::cout << entry.name << binds << "\n";
      }
      return kExitOk;
    }
    if (options.cache_file) {
      return inspect_cache_file(*options.cache_file);
    }
    if ((!options.larcs_file && !options.program_name) ||
        !options.topology_spec) {
      return usage(argv[0]);
    }
    if (options.repair && !options.fault_spec) {
      std::cerr << "--repair requires --inject-faults\n";
      return usage(argv[0]);
    }
    if (options.explain && options.mapper.portfolio <= 0) {
      std::cerr << "--explain requires --portfolio N (the provenance "
                   "report describes the portfolio decision)\n";
      return usage(argv[0]);
    }
    if (options.mapper.anneal > 0 && options.mapper.portfolio <= 0) {
      std::cerr << "--anneal requires --portfolio N (annealing runs as a "
                   "portfolio candidate)\n";
      return usage(argv[0]);
    }
    if (options.mapper.heft && options.mapper.portfolio <= 0) {
      std::cerr << "--heft requires --portfolio N (the list scheduler runs "
                   "as a portfolio candidate)\n";
      return usage(argv[0]);
    }
    if (options.pareto && options.mapper.portfolio <= 0) {
      std::cerr << "--pareto requires --portfolio N (the front ranks the "
                   "portfolio candidates)\n";
      return usage(argv[0]);
    }
    if (options.mapper.multilevel != 0 && options.mapper.portfolio > 0) {
      std::cerr << "--multilevel is incompatible with --portfolio (the "
                   "V-cycle replaces the candidate search)\n";
      return usage(argv[0]);
    }
    if (options.trace_file || options.trace_summary) {
      trace::enable();
    }
    if (options.metrics_file) {
      metrics::enable();
      metrics::set_deterministic(false);
    }
    const auto run_start = std::chrono::steady_clock::now();
    const int code = run(options);
    if (options.metrics_file) {
      // One-shot exposition: the run's wall time plus whatever the
      // pipeline recorded, published exactly like the daemon does.
      metrics::counter("oregami_map_runs_total").increment();
      metrics::counter("oregami_map_exit_code_total{code=\"" +
                       std::to_string(code) + "\"}")
          .increment();
      metrics::histogram("oregami_map_run_ms")
          .record(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - run_start)
                      .count());
      if (!metrics::write_prometheus_file(*options.metrics_file)) {
        std::cerr << "warning: cannot write metrics to '"
                  << *options.metrics_file << "'\n";
      }
    }
    emit_trace(options);
    return code;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return kExitInternal;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return kExitInternal;
  }
}
