#!/usr/bin/env python3
"""Validate oregami Prometheus metric expositions.

Dependency-free (stdlib only). Checks the text exposition format the
metrics registry writes (`--metrics-file` on oregami_serve /
oregami_map):

  * every sample belongs to a family announced by a `# TYPE` line, and
    each family is announced exactly once;
  * sample values are finite numbers (counters and gauges integers);
  * histogram families are complete: cumulative `_bucket{le=...}`
    samples with strictly increasing `le` bounds and non-decreasing
    counts, a final `le="+Inf"` bucket, and `_sum`/`_count` samples
    where `_count` equals the +Inf bucket;
  * with --identity, the server outcome partition holds:
        jobs_total{outcome=hit|miss|error|rejected|abandoned}
    sums to jobs_submitted_total, and cache hit/miss totals are
    consistent with the hit/miss outcomes.

Usage:
    check_metrics.py METRICS.prom              # format checks, exit 0/1
    check_metrics.py METRICS.prom --identity   # + server counter identity
"""

import argparse
import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram|summary|untyped)$"
)

OUTCOMES = ("hit", "miss", "error", "rejected", "abandoned")


def parse_labels(text):
    """'a="b",le="+Inf"' -> {'a': 'b', 'le': '+Inf'}; None on garbage."""
    labels = {}
    if not text:
        return labels
    for match in re.finditer(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"', text):
        labels[match.group(1)] = match.group(2)
    # Round-trip check: every key=value pair must have matched.
    if len(labels) != text.count("="):
        return None
    return labels


def family_of(name):
    """Strips the histogram sample suffix to get the TYPE family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class Exposition:
    def __init__(self):
        self.types = {}      # family -> kind
        self.samples = []    # (name, labels-dict, value, line-number)

    def value(self, name, labels=None):
        """The value of an exact sample, or None when absent."""
        labels = labels or {}
        for sample_name, sample_labels, value, _ in self.samples:
            if sample_name == name and sample_labels == labels:
                return value
        return None


def parse(path, errors):
    exposition = Exposition()
    with open(path, encoding="utf-8") as handle:
        for index, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                match = TYPE_RE.match(line)
                if not match:
                    if line.startswith("# TYPE"):
                        errors.append(f"line {index}: malformed TYPE: {line!r}")
                    continue  # HELP/comments are fine
                name = match.group("name")
                if name in exposition.types:
                    errors.append(
                        f"line {index}: duplicate # TYPE for {name!r}"
                    )
                exposition.types[name] = match.group("kind")
                continue
            match = SAMPLE_RE.match(line)
            if not match:
                errors.append(f"line {index}: unparseable sample: {line!r}")
                continue
            labels = parse_labels(match.group("labels") or "")
            if labels is None:
                errors.append(f"line {index}: malformed labels: {line!r}")
                continue
            try:
                value = float(match.group("value"))
            except ValueError:
                errors.append(f"line {index}: bad value: {line!r}")
                continue
            if not math.isfinite(value):
                errors.append(f"line {index}: non-finite value: {line!r}")
                continue
            exposition.samples.append(
                (match.group("name"), labels, value, index)
            )
    return exposition


def check_format(exposition, errors):
    histogram_buckets = {}  # (family, non-le labels) -> [(le, count, line)]
    for name, labels, value, index in exposition.samples:
        family = family_of(name)
        kind = exposition.types.get(family) or exposition.types.get(name)
        if kind is None:
            errors.append(
                f"line {index}: sample {name!r} has no # TYPE line"
            )
            continue
        if kind in ("counter", "gauge") and name == family:
            if value != int(value) or (kind == "counter" and value < 0):
                errors.append(
                    f"line {index}: {kind} {name!r} must be a "
                    f"non-negative integer, got {value}"
                )
        if kind == "histogram":
            if name == family:
                errors.append(
                    f"line {index}: bare sample {name!r} inside a "
                    "histogram family"
                )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {index}: bucket sample without le: {name!r}"
                    )
                    continue
                rest = tuple(
                    sorted((k, v) for k, v in labels.items() if k != "le")
                )
                bound = (
                    math.inf if labels["le"] == "+Inf" else float(labels["le"])
                )
                histogram_buckets.setdefault((family, rest), []).append(
                    (bound, value, index)
                )

    for (family, rest), buckets in sorted(histogram_buckets.items()):
        series = family + (
            "{" + ",".join(f'{k}="{v}"' for k, v in rest) + "}" if rest else ""
        )
        bounds = [b for b, _, _ in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(f"{series}: le bounds not strictly increasing")
        counts = [c for _, c, _ in buckets]
        if counts != sorted(counts):
            errors.append(f"{series}: bucket counts not cumulative")
        if not bounds or bounds[-1] != math.inf:
            errors.append(f"{series}: missing le=\"+Inf\" bucket")
            continue
        label_dict = dict(rest)
        count = exposition.value(family + "_count", label_dict)
        if count is None:
            errors.append(f"{series}: missing _count sample")
        elif count != counts[-1]:
            errors.append(
                f"{series}: _count {count} != +Inf bucket {counts[-1]}"
            )
        if exposition.value(family + "_sum", label_dict) is None:
            errors.append(f"{series}: missing _sum sample")


def check_identity(exposition, errors):
    submitted = exposition.value("oregami_server_jobs_submitted_total")
    if submitted is None:
        errors.append("identity: oregami_server_jobs_submitted_total missing")
        return
    outcomes = {}
    for outcome in OUTCOMES:
        value = exposition.value(
            "oregami_server_jobs_total", {"outcome": outcome}
        )
        if value is None:
            errors.append(
                f"identity: jobs_total outcome {outcome!r} missing"
            )
            return
        outcomes[outcome] = value
    total = sum(outcomes.values())
    if total != submitted:
        errors.append(
            f"identity: outcomes sum to {total} != submitted {submitted} "
            f"({outcomes})"
        )
    # Cache traffic can only exceed the hit/miss outcomes (abandoned
    # jobs touch the cache but book as abandoned), never trail them.
    cache_hits = exposition.value("oregami_server_cache_hits_total")
    cache_misses = exposition.value("oregami_server_cache_misses_total")
    if cache_hits is not None and cache_hits < outcomes["hit"]:
        errors.append(
            f"identity: cache_hits {cache_hits} < hit outcome "
            f"{outcomes['hit']}"
        )
    if cache_misses is not None and cache_misses < outcomes["miss"]:
        errors.append(
            f"identity: cache_misses {cache_misses} < miss outcome "
            f"{outcomes['miss']}"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="Prometheus text exposition file")
    parser.add_argument(
        "--identity", action="store_true",
        help="check the server job-outcome counter identity",
    )
    args = parser.parse_args()

    errors = []
    exposition = parse(args.metrics, errors)
    check_format(exposition, errors)
    if args.identity:
        check_identity(exposition, errors)

    if errors:
        for message in errors:
            print(message, file=sys.stderr)
        print(f"{args.metrics}: {len(errors)} problem(s)", file=sys.stderr)
        return 1

    families = len(exposition.types)
    print(
        f"{args.metrics}: {len(exposition.samples)} samples in "
        f"{families} families valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
