#!/usr/bin/env python3
"""Validate and normalise oregami_map --trace output.

Dependency-free (stdlib only): validates a trace JSON file against the
invariants encoded in tools/trace_schema.json without needing a
jsonschema package, and optionally writes a normalised copy with the
volatile fields (ts, dur, args.worker) stripped so two runs of the same
pipeline can be byte-compared regardless of wall clock, scheduling, or
--jobs value.

Usage:
    check_trace.py TRACE.json              # validate, exit 0/1
    check_trace.py TRACE.json --norm OUT   # validate + write normalised copy

The hand-rolled checks mirror trace_schema.json; keep the two in sync.
"""

import argparse
import json
import sys

VALID_PH = {"X", "C", "i"}


def fail(errors, index, message):
    errors.append(f"traceEvents[{index}]: {message}")


def check_event(event, index, errors):
    if not isinstance(event, dict):
        fail(errors, index, "event is not an object")
        return
    for key in ("name", "cat", "ph", "pid", "tid", "ts", "args"):
        if key not in event:
            fail(errors, index, f"missing required field '{key}'")
            return
    allowed = {"name", "cat", "ph", "pid", "tid", "ts", "dur", "s", "args"}
    for key in event:
        if key not in allowed:
            fail(errors, index, f"unexpected field '{key}'")
    if not isinstance(event["name"], str) or not event["name"]:
        fail(errors, index, "name must be a non-empty string")
    if event["cat"] != "oregami":
        fail(errors, index, f"cat must be 'oregami', got {event['cat']!r}")
    ph = event["ph"]
    if ph not in VALID_PH:
        fail(errors, index, f"ph must be one of {sorted(VALID_PH)}, got {ph!r}")
        return
    if event["pid"] != 1:
        fail(errors, index, f"pid must be 1, got {event['pid']!r}")
    if not isinstance(event["tid"], int) or event["tid"] < 0:
        fail(errors, index, "tid must be a non-negative integer lane")
    if not isinstance(event["ts"], int) or event["ts"] < 0:
        fail(errors, index, "ts must be a non-negative integer")
    if ph == "X":
        if not isinstance(event.get("dur"), int) or event["dur"] < 0:
            fail(errors, index, "span ('X') needs a non-negative integer dur")
    elif "dur" in event:
        fail(errors, index, f"dur is only valid on spans, not ph={ph!r}")
    if ph == "i":
        if event.get("s") != "t":
            fail(errors, index, "instant ('i') needs s == 't'")
    elif "s" in event:
        fail(errors, index, f"s is only valid on instants, not ph={ph!r}")

    args = event["args"]
    if not isinstance(args, dict):
        fail(errors, index, "args must be an object")
        return
    path = args.get("path")
    if not isinstance(path, str) or not path:
        fail(errors, index, "args.path must be a non-empty string")
    elif not path.endswith(event["name"]):
        fail(errors, index,
             f"name {event['name']!r} is not the leaf of path {path!r}")
    worker = args.get("worker")
    if not isinstance(worker, int) or worker < -1:
        fail(errors, index, "args.worker must be an integer >= -1")
    if ph == "C":
        if not isinstance(args.get("value"), int):
            fail(errors, index, "counter ('C') needs an integer args.value")
    elif "value" in args:
        fail(errors, index, "args.value is only valid on counters")
    for key in args:
        if key not in {"path", "value", "detail", "worker"}:
            fail(errors, index, f"unexpected args field '{key}'")
    if "detail" in args and not isinstance(args["detail"], str):
        fail(errors, index, "args.detail must be a string")


def normalise(doc):
    """Zero the volatile fields in place; deterministic fields survive."""
    for event in doc["traceEvents"]:
        event["ts"] = 0
        if "dur" in event:
            event["dur"] = 0
        if isinstance(event.get("args"), dict):
            event["args"]["worker"] = 0
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSON file written by --trace")
    parser.add_argument(
        "--norm", metavar="OUT",
        help="write a normalised copy (volatile fields zeroed) to OUT")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot load {args.trace}: {error}", file=sys.stderr)
        return 1

    errors = []
    if not isinstance(doc, dict) or set(doc) != {"traceEvents"}:
        errors.append("document must be exactly {\"traceEvents\": [...]}")
    elif not isinstance(doc["traceEvents"], list):
        errors.append("traceEvents must be an array")
    else:
        for index, event in enumerate(doc["traceEvents"]):
            check_event(event, index, errors)

    if errors:
        for error in errors[:20]:
            print(f"error: {error}", file=sys.stderr)
        if len(errors) > 20:
            print(f"error: ... and {len(errors) - 20} more", file=sys.stderr)
        return 1

    count = len(doc["traceEvents"])
    print(f"{args.trace}: OK ({count} events)")

    if args.norm:
        with open(args.norm, "w", encoding="utf-8") as handle:
            json.dump(normalise(doc), handle, indent=1, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
